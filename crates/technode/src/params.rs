//! Per-node foundry parameters ([`NodeParameters`]) and the
//! [`TechnologyDb`] registry of shipped defaults.

use crate::node::ProcessNode;
use serde::{Deserialize, Serialize};
use tdc_units::{Area, CarbonPerArea, EnergyPerArea, Length};

/// Physical and environmental parameters of one process node.
///
/// These are the "foundry related parameters" of the paper's Table 2:
/// feature size λ, layout-density factor β (so that one gate occupies
/// `β·λ²`), the fab's energy / gas / raw-material footprints per unit
/// processed area (EPA / GPA / MPA), the negative-binomial yield inputs
/// (defect density `D0`, clustering parameter `α`), the TSV diameter
/// available at this node, and the maximum number of BEOL metal layers
/// the node's stack supports.
///
/// Values are immutable once built; use [`NodeParameters::builder`] (or
/// [`NodeParameters::to_builder`]) to derive variants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeParameters {
    node: ProcessNode,
    feature_size: Length,
    beta: f64,
    max_beol_layers: u32,
    energy_per_area: EnergyPerArea,
    gas_per_area: CarbonPerArea,
    material_per_area: CarbonPerArea,
    defect_density_per_cm2: f64,
    clustering_alpha: f64,
    tsv_diameter: Length,
}

impl NodeParameters {
    /// Starts building parameters for `node`.
    #[must_use]
    pub fn builder(node: ProcessNode) -> NodeParametersBuilder {
        NodeParametersBuilder::new(node)
    }

    /// Re-opens these parameters as a builder for modification.
    #[must_use]
    pub fn to_builder(&self) -> NodeParametersBuilder {
        NodeParametersBuilder {
            node: self.node,
            feature_size: Some(self.feature_size),
            beta: self.beta,
            max_beol_layers: self.max_beol_layers,
            energy_per_area: self.energy_per_area,
            gas_per_area: self.gas_per_area,
            material_per_area: self.material_per_area,
            defect_density_per_cm2: self.defect_density_per_cm2,
            clustering_alpha: self.clustering_alpha,
            tsv_diameter: self.tsv_diameter,
        }
    }

    /// The node these parameters describe.
    #[must_use]
    pub fn node(&self) -> ProcessNode {
        self.node
    }

    /// Feature size λ.
    #[must_use]
    pub fn feature_size(&self) -> Length {
        self.feature_size
    }

    /// Layout-density factor β (dimensionless; one gate ≈ `β·λ²`).
    ///
    /// The paper's Table 2 lists β ∈ 450–850; calibrated here so that
    /// NVIDIA Orin (17 G gates at 7 nm) lands near its real ≈455 mm² die.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Maximum BEOL metal layer count supported by this node's stack.
    #[must_use]
    pub fn max_beol_layers(&self) -> u32 {
        self.max_beol_layers
    }

    /// Fab energy per unit processed area (`EPA`, Eq. 6).
    #[must_use]
    pub fn energy_per_area(&self) -> EnergyPerArea {
        self.energy_per_area
    }

    /// Fab direct gas emissions per unit processed area (`GPA`, Eq. 6).
    #[must_use]
    pub fn gas_per_area(&self) -> CarbonPerArea {
        self.gas_per_area
    }

    /// Raw-material footprint per unit processed area (`MPA`, Eq. 6).
    #[must_use]
    pub fn material_per_area(&self) -> CarbonPerArea {
        self.material_per_area
    }

    /// Defect density `D0` in defects per cm² (Eq. 15).
    #[must_use]
    pub fn defect_density_per_cm2(&self) -> f64 {
        self.defect_density_per_cm2
    }

    /// Negative-binomial clustering parameter `α` (Eq. 15).
    #[must_use]
    pub fn clustering_alpha(&self) -> f64 {
        self.clustering_alpha
    }

    /// Through-silicon-via diameter `D_TSV` available at this node.
    #[must_use]
    pub fn tsv_diameter(&self) -> Length {
        self.tsv_diameter
    }

    /// Area of a single logic gate: `β · λ²` (the per-gate form of the
    /// paper's Eq. 8).
    #[must_use]
    pub fn gate_area(&self) -> Area {
        self.feature_size.squared() * self.beta
    }

    /// Gate density in gates per mm².
    #[must_use]
    pub fn gate_density_per_mm2(&self) -> f64 {
        1.0 / self.gate_area().mm2()
    }

    /// Total gate area for `gates` logic gates (Eq. 8:
    /// `A_gate = N_g · β · λ²`).
    #[must_use]
    pub fn area_for_gates(&self, gates: f64) -> Area {
        self.gate_area() * gates
    }

    /// Inverse of [`NodeParameters::area_for_gates`]: how many gates fit
    /// in `area`.
    #[must_use]
    pub fn gates_for_area(&self, area: Area) -> f64 {
        area.mm2() / self.gate_area().mm2()
    }

    /// BEOL wire pitch ω = 3.6 λ (Table 2, after Stow et al.).
    #[must_use]
    pub fn wire_pitch(&self) -> Length {
        self.feature_size * 3.6
    }

    /// Average gate pitch √(β)·λ — the side of the square occupied by
    /// one gate; converts wirelength expressed in gate pitches into a
    /// physical length.
    #[must_use]
    pub fn gate_pitch(&self) -> Length {
        self.feature_size * self.beta.sqrt()
    }

    /// Silicon area consumed by a single TSV, modelled as a square
    /// keep-out of side `keepout × D_TSV` (landing pad + exclusion
    /// zone). `keepout` is typically 1.5–3; the model default is 2.
    #[must_use]
    pub fn tsv_occupied_area(&self, keepout: f64) -> Area {
        (self.tsv_diameter * keepout).squared()
    }

    /// Checks every field against the ranges published in the paper's
    /// Table 2, returning a human-readable violation per out-of-range
    /// field. An empty vector means fully range-faithful.
    #[must_use]
    pub fn paper_range_violations(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let nm = self.feature_size.nm();
        if !(3.0..=28.0).contains(&nm) {
            violations.push(format!("feature size {nm} nm outside 3–28 nm"));
        }
        if !(450.0..=850.0).contains(&self.beta) {
            violations.push(format!("beta {} outside 450–850", self.beta));
        }
        let epa = self.energy_per_area.kwh_per_cm2();
        if !(0.4..=1.0).contains(&epa) {
            violations.push(format!("EPA {epa} kWh/cm² outside 0.4–1.0"));
        }
        let gpa = self.gas_per_area.kg_per_cm2();
        if !(0.1..=0.5).contains(&gpa) {
            violations.push(format!("GPA {gpa} kg/cm² outside 0.1–0.5"));
        }
        let mpa = self.material_per_area.kg_per_cm2();
        if !(0.1..=0.5).contains(&mpa) {
            violations.push(format!("MPA {mpa} kg/cm² outside 0.1–0.5"));
        }
        let tsv = self.tsv_diameter.um();
        if !(0.3..=25.0).contains(&tsv) {
            violations.push(format!("TSV diameter {tsv} µm outside 0.3–25 µm"));
        }
        violations
    }
}

/// Builder for [`NodeParameters`] (C-BUILDER).
///
/// Starts from the shipped defaults of the chosen node so that callers
/// only need to override what they study:
///
/// ```
/// use tdc_technode::{NodeParameters, ProcessNode};
///
/// let params = NodeParameters::builder(ProcessNode::N7)
///     .defect_density_per_cm2(0.2)
///     .build()
///     .expect("valid parameters");
/// assert_eq!(params.defect_density_per_cm2(), 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct NodeParametersBuilder {
    node: ProcessNode,
    feature_size: Option<Length>,
    beta: f64,
    max_beol_layers: u32,
    energy_per_area: EnergyPerArea,
    gas_per_area: CarbonPerArea,
    material_per_area: CarbonPerArea,
    defect_density_per_cm2: f64,
    clustering_alpha: f64,
    tsv_diameter: Length,
}

/// Error returned when [`NodeParametersBuilder::build`] is handed
/// non-physical values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidNodeParameters {
    problems: Vec<String>,
}

impl InvalidNodeParameters {
    /// The list of detected problems.
    #[must_use]
    pub fn problems(&self) -> &[String] {
        &self.problems
    }
}

impl core::fmt::Display for InvalidNodeParameters {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid node parameters: {}", self.problems.join("; "))
    }
}

impl std::error::Error for InvalidNodeParameters {}

impl NodeParametersBuilder {
    fn new(node: ProcessNode) -> Self {
        TechnologyDb::shipped_defaults(node).to_builder()
    }

    /// Overrides the feature size λ (defaults to the node's marketing
    /// nanometre figure).
    #[must_use]
    pub fn feature_size(mut self, length: Length) -> Self {
        self.feature_size = Some(length);
        self
    }

    /// Overrides the layout-density factor β.
    #[must_use]
    pub fn beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Overrides the maximum BEOL layer count.
    #[must_use]
    pub fn max_beol_layers(mut self, layers: u32) -> Self {
        self.max_beol_layers = layers;
        self
    }

    /// Overrides the fab energy per area (EPA).
    #[must_use]
    pub fn energy_per_area(mut self, epa: EnergyPerArea) -> Self {
        self.energy_per_area = epa;
        self
    }

    /// Overrides the fab gas emissions per area (GPA).
    #[must_use]
    pub fn gas_per_area(mut self, gpa: CarbonPerArea) -> Self {
        self.gas_per_area = gpa;
        self
    }

    /// Overrides the raw-material footprint per area (MPA).
    #[must_use]
    pub fn material_per_area(mut self, mpa: CarbonPerArea) -> Self {
        self.material_per_area = mpa;
        self
    }

    /// Overrides the defect density `D0` (defects per cm²).
    #[must_use]
    pub fn defect_density_per_cm2(mut self, d0: f64) -> Self {
        self.defect_density_per_cm2 = d0;
        self
    }

    /// Overrides the clustering parameter `α`.
    #[must_use]
    pub fn clustering_alpha(mut self, alpha: f64) -> Self {
        self.clustering_alpha = alpha;
        self
    }

    /// Overrides the TSV diameter.
    #[must_use]
    pub fn tsv_diameter(mut self, diameter: Length) -> Self {
        self.tsv_diameter = diameter;
        self
    }

    /// Finalizes the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidNodeParameters`] when any field is non-finite or
    /// non-positive (zero BEOL layers included): such values would make
    /// the downstream closed forms meaningless rather than merely
    /// unusual.
    pub fn build(self) -> Result<NodeParameters, InvalidNodeParameters> {
        let feature_size = self
            .feature_size
            .unwrap_or_else(|| Length::from_nm(f64::from(self.node.nanometers())));
        let mut problems = Vec::new();
        let mut check = |name: &str, v: f64| {
            if !v.is_finite() || v <= 0.0 {
                problems.push(format!("{name} must be finite and positive, got {v}"));
            }
        };
        check("feature size (mm)", feature_size.mm());
        check("beta", self.beta);
        check("EPA (kWh/cm²)", self.energy_per_area.kwh_per_cm2());
        check("GPA (kg/cm²)", self.gas_per_area.kg_per_cm2());
        check("MPA (kg/cm²)", self.material_per_area.kg_per_cm2());
        check("defect density (1/cm²)", self.defect_density_per_cm2);
        check("clustering alpha", self.clustering_alpha);
        check("TSV diameter (mm)", self.tsv_diameter.mm());
        if self.max_beol_layers == 0 {
            problems.push("max BEOL layers must be at least 1".to_owned());
        }
        if !problems.is_empty() {
            return Err(InvalidNodeParameters { problems });
        }
        Ok(NodeParameters {
            node: self.node,
            feature_size,
            beta: self.beta,
            max_beol_layers: self.max_beol_layers,
            energy_per_area: self.energy_per_area,
            gas_per_area: self.gas_per_area,
            material_per_area: self.material_per_area,
            defect_density_per_cm2: self.defect_density_per_cm2,
            clustering_alpha: self.clustering_alpha,
            tsv_diameter: self.tsv_diameter,
        })
    }
}

/// Registry of [`NodeParameters`] for every [`ProcessNode`].
///
/// `TechnologyDb::default()` ships the calibrated defaults; individual
/// nodes can be overridden with [`TechnologyDb::insert`] for
/// sensitivity studies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechnologyDb {
    nodes: Vec<NodeParameters>,
}

impl Default for TechnologyDb {
    fn default() -> Self {
        Self {
            nodes: ProcessNode::ALL
                .into_iter()
                .map(Self::shipped_defaults)
                .collect(),
        }
    }
}

impl TechnologyDb {
    /// Parameters for `node` (shipped defaults unless overridden).
    ///
    /// # Panics
    ///
    /// Never panics: every known node is present by construction.
    #[must_use]
    pub fn node(&self, node: ProcessNode) -> &NodeParameters {
        self.nodes
            .iter()
            .find(|p| p.node() == node)
            .expect("every ProcessNode has an entry")
    }

    /// Replaces the entry for `params.node()`, returning the previous
    /// parameters.
    pub fn insert(&mut self, params: NodeParameters) -> NodeParameters {
        let slot = self
            .nodes
            .iter_mut()
            .find(|p| p.node() == params.node())
            .expect("every ProcessNode has an entry");
        core::mem::replace(slot, params)
    }

    /// Iterates over all entries, finest node first.
    pub fn iter(&self) -> impl Iterator<Item = &NodeParameters> {
        self.nodes.iter()
    }

    /// Parameters for an arbitrary feature size in the supported
    /// 3–28 nm span, linearly interpolated (in nm) between the two
    /// neighbouring known nodes of this database. Exact known sizes
    /// return the stored entry; the node identity snaps to the nearest
    /// known node.
    ///
    /// Returns `None` outside the supported span.
    ///
    /// ```
    /// use tdc_technode::TechnologyDb;
    /// let db = TechnologyDb::default();
    /// let n6 = db.interpolated(6.0).unwrap();
    /// let n5 = db.node(tdc_technode::ProcessNode::N5);
    /// let n7 = db.node(tdc_technode::ProcessNode::N7);
    /// let epa = n6.energy_per_area().kwh_per_cm2();
    /// assert!(epa < n5.energy_per_area().kwh_per_cm2());
    /// assert!(epa > n7.energy_per_area().kwh_per_cm2());
    /// ```
    #[must_use]
    pub fn interpolated(&self, nm: f64) -> Option<NodeParameters> {
        if !(3.0..=28.0).contains(&nm) || !nm.is_finite() {
            return None;
        }
        // Bracketing known nodes: finest node at/below nm and coarsest
        // node at/above nm (ALL is finest-first).
        let below = ProcessNode::ALL
            .into_iter()
            .filter(|n| f64::from(n.nanometers()) <= nm)
            .max_by_key(|n| n.nanometers());
        let above = ProcessNode::ALL
            .into_iter()
            .filter(|n| f64::from(n.nanometers()) >= nm)
            .min_by_key(|n| n.nanometers());
        let (a, b) = match (below, above) {
            (Some(a), Some(b)) => (a, b),
            _ => return None,
        };
        let pa = self.node(a);
        if a == b {
            return Some(pa.clone());
        }
        let pb = self.node(b);
        let na = f64::from(a.nanometers());
        let nb = f64::from(b.nanometers());
        let t = (nm - na) / (nb - na);
        let lerp = |x: f64, y: f64| x + (y - x) * t;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let beol = lerp(
            f64::from(pa.max_beol_layers()),
            f64::from(pb.max_beol_layers()),
        )
        .round() as u32;
        NodeParameters::builder(ProcessNode::nearest(nm.round() as u32))
            .feature_size(Length::from_nm(nm))
            .beta(lerp(pa.beta(), pb.beta()))
            .max_beol_layers(beol.max(1))
            .energy_per_area(EnergyPerArea::from_kwh_per_cm2(lerp(
                pa.energy_per_area().kwh_per_cm2(),
                pb.energy_per_area().kwh_per_cm2(),
            )))
            .gas_per_area(CarbonPerArea::from_kg_per_cm2(lerp(
                pa.gas_per_area().kg_per_cm2(),
                pb.gas_per_area().kg_per_cm2(),
            )))
            .material_per_area(CarbonPerArea::from_kg_per_cm2(lerp(
                pa.material_per_area().kg_per_cm2(),
                pb.material_per_area().kg_per_cm2(),
            )))
            .defect_density_per_cm2(lerp(
                pa.defect_density_per_cm2(),
                pb.defect_density_per_cm2(),
            ))
            .clustering_alpha(lerp(pa.clustering_alpha(), pb.clustering_alpha()))
            .tsv_diameter(Length::from_um(lerp(
                pa.tsv_diameter().um(),
                pb.tsv_diameter().um(),
            )))
            .build()
            .ok()
    }

    /// The shipped default parameters of `node`.
    ///
    /// The table is synthetic but range-faithful to the paper's Table 2
    /// (see crate docs): EPA grows 0.4 → 1.0 kWh/cm² from 28 nm to 3 nm,
    /// GPA 0.10 → 0.27 and MPA 0.20 → 0.42 kg CO₂e/cm², defect density
    /// 0.07 → 0.20 /cm², TSVs shrink 5 µm → 1 µm.
    #[must_use]
    pub fn shipped_defaults(node: ProcessNode) -> NodeParameters {
        // (β, max BEOL, EPA kWh/cm², GPA kg/cm², MPA kg/cm², D0 /cm², α, TSV µm)
        let (beta, beol, epa, gpa, mpa, d0, alpha, tsv_um) = match node {
            ProcessNode::N3 => (700.0, 18, 1.00, 0.270, 0.420, 0.20, 2.0, 1.0),
            ProcessNode::N5 => (600.0, 16, 0.90, 0.230, 0.360, 0.15, 2.2, 1.5),
            ProcessNode::N7 => (550.0, 15, 0.80, 0.200, 0.320, 0.13, 2.5, 2.0),
            ProcessNode::N8 => (545.0, 14, 0.72, 0.180, 0.300, 0.12, 2.6, 2.2),
            ProcessNode::N10 => (535.0, 14, 0.65, 0.165, 0.280, 0.11, 2.8, 2.5),
            ProcessNode::N12 => (520.0, 13, 0.60, 0.150, 0.265, 0.10, 3.0, 3.0),
            ProcessNode::N14 => (500.0, 13, 0.55, 0.135, 0.250, 0.09, 3.0, 3.5),
            ProcessNode::N16 => (480.0, 12, 0.50, 0.125, 0.235, 0.09, 3.0, 4.0),
            ProcessNode::N20 => (465.0, 11, 0.46, 0.115, 0.222, 0.08, 3.0, 4.2),
            ProcessNode::N22 => (460.0, 11, 0.44, 0.110, 0.215, 0.075, 3.0, 4.5),
            ProcessNode::N28 => (450.0, 10, 0.40, 0.100, 0.200, 0.07, 3.0, 5.0),
        };
        NodeParameters {
            node,
            feature_size: Length::from_nm(f64::from(node.nanometers())),
            beta,
            max_beol_layers: beol,
            energy_per_area: EnergyPerArea::from_kwh_per_cm2(epa),
            gas_per_area: CarbonPerArea::from_kg_per_cm2(gpa),
            material_per_area: CarbonPerArea::from_kg_per_cm2(mpa),
            defect_density_per_cm2: d0,
            clustering_alpha: alpha,
            tsv_diameter: Length::from_um(tsv_um),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_node_has_defaults_within_paper_ranges() {
        let db = TechnologyDb::default();
        for params in db.iter() {
            assert!(
                params.paper_range_violations().is_empty(),
                "{:?}: {:?}",
                params.node(),
                params.paper_range_violations()
            );
        }
    }

    #[test]
    fn environmental_footprints_grow_toward_advanced_nodes() {
        let db = TechnologyDb::default();
        // ALL is finest-first, so footprints must be non-increasing along it.
        let mut prev_epa = f64::INFINITY;
        let mut prev_gpa = f64::INFINITY;
        let mut prev_mpa = f64::INFINITY;
        let mut prev_d0 = f64::INFINITY;
        for params in db.iter() {
            let epa = params.energy_per_area().kwh_per_cm2();
            let gpa = params.gas_per_area().kg_per_cm2();
            let mpa = params.material_per_area().kg_per_cm2();
            assert!(epa <= prev_epa, "{:?}", params.node());
            assert!(gpa <= prev_gpa, "{:?}", params.node());
            assert!(mpa <= prev_mpa, "{:?}", params.node());
            assert!(params.defect_density_per_cm2() <= prev_d0);
            prev_epa = epa;
            prev_gpa = gpa;
            prev_mpa = mpa;
            prev_d0 = params.defect_density_per_cm2();
        }
    }

    #[test]
    fn tsvs_shrink_and_beol_grows_with_scaling() {
        let db = TechnologyDb::default();
        let n3 = db.node(ProcessNode::N3);
        let n28 = db.node(ProcessNode::N28);
        assert!(n3.tsv_diameter() < n28.tsv_diameter());
        assert!(n3.max_beol_layers() > n28.max_beol_layers());
    }

    #[test]
    fn orin_gate_area_calibration() {
        // NVIDIA Orin: 17e9 gates at 7 nm should land near its real
        // ~455 mm² die (within 15 %).
        let db = TechnologyDb::default();
        let n7 = db.node(ProcessNode::N7);
        let area = n7.area_for_gates(17.0e9);
        assert!(
            (area.mm2() - 455.0).abs() / 455.0 < 0.15,
            "got {} mm²",
            area.mm2()
        );
    }

    #[test]
    fn gates_for_area_inverts_area_for_gates() {
        let n7 = TechnologyDb::shipped_defaults(ProcessNode::N7);
        let gates = 1.0e9;
        let area = n7.area_for_gates(gates);
        assert!((n7.gates_for_area(area) - gates).abs() / gates < 1e-12);
    }

    #[test]
    fn wire_and_gate_pitch() {
        let n7 = TechnologyDb::shipped_defaults(ProcessNode::N7);
        assert!((n7.wire_pitch().nm() - 25.2).abs() < 1e-9);
        // gate pitch = sqrt(550)*7nm ≈ 164.2 nm
        assert!((n7.gate_pitch().nm() - 550.0f64.sqrt() * 7.0).abs() < 1e-9);
        assert!(n7.gate_density_per_mm2() > 1.0e7);
    }

    #[test]
    fn tsv_occupied_area_scales_with_keepout() {
        let n7 = TechnologyDb::shipped_defaults(ProcessNode::N7);
        let a1 = n7.tsv_occupied_area(1.0);
        let a2 = n7.tsv_occupied_area(2.0);
        assert!((a2.um2() / a1.um2() - 4.0).abs() < 1e-9);
        assert!((a1.um2() - 4.0).abs() < 1e-9); // 2 µm TSV → 4 µm²
    }

    #[test]
    fn builder_overrides_and_validates() {
        let ok = NodeParameters::builder(ProcessNode::N5)
            .beta(620.0)
            .max_beol_layers(17)
            .defect_density_per_cm2(0.18)
            .build()
            .unwrap();
        assert_eq!(ok.beta(), 620.0);
        assert_eq!(ok.max_beol_layers(), 17);

        let err = NodeParameters::builder(ProcessNode::N5)
            .beta(-1.0)
            .defect_density_per_cm2(f64::NAN)
            .build()
            .unwrap_err();
        assert_eq!(err.problems().len(), 2);
        assert!(err.to_string().contains("beta"));

        let err = NodeParameters::builder(ProcessNode::N5)
            .max_beol_layers(0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("BEOL"));
    }

    #[test]
    fn insert_overrides_and_returns_previous() {
        let mut db = TechnologyDb::default();
        let custom = NodeParameters::builder(ProcessNode::N7)
            .defect_density_per_cm2(0.5)
            .build()
            .unwrap();
        let prev = db.insert(custom.clone());
        assert_eq!(prev.defect_density_per_cm2(), 0.13);
        assert_eq!(db.node(ProcessNode::N7), &custom);
    }

    #[test]
    fn interpolation_brackets_and_snaps() {
        let db = TechnologyDb::default();
        // Exact sizes return the stored entry.
        let exact = db.interpolated(7.0).unwrap();
        assert_eq!(&exact, db.node(ProcessNode::N7));
        // 6 nm sits strictly between 5 nm and 7 nm on every field.
        let n6 = db.interpolated(6.0).unwrap();
        let (n5, n7) = (db.node(ProcessNode::N5), db.node(ProcessNode::N7));
        assert!((n6.feature_size().nm() - 6.0).abs() < 1e-9);
        for (lo, mid, hi) in [
            (
                n7.energy_per_area().kwh_per_cm2(),
                n6.energy_per_area().kwh_per_cm2(),
                n5.energy_per_area().kwh_per_cm2(),
            ),
            (n7.beta(), n6.beta(), n5.beta()),
            (
                n7.defect_density_per_cm2(),
                n6.defect_density_per_cm2(),
                n5.defect_density_per_cm2(),
            ),
        ] {
            assert!(lo < mid && mid < hi, "{lo} {mid} {hi}");
        }
        // Midpoint is the exact average.
        assert!((n6.beta() - (n5.beta() + n7.beta()) / 2.0).abs() < 1e-9);
        // TSVs shrink toward finer nodes.
        assert!(n6.tsv_diameter() < n7.tsv_diameter());
        assert!(n6.tsv_diameter() > n5.tsv_diameter());
    }

    #[test]
    fn interpolation_rejects_out_of_span() {
        let db = TechnologyDb::default();
        assert!(db.interpolated(2.0).is_none());
        assert!(db.interpolated(40.0).is_none());
        assert!(db.interpolated(f64::NAN).is_none());
        assert!(db.interpolated(3.0).is_some());
        assert!(db.interpolated(28.0).is_some());
    }

    #[test]
    fn interpolation_respects_overrides() {
        let mut db = TechnologyDb::default();
        db.insert(
            NodeParameters::builder(ProcessNode::N7)
                .beta(800.0)
                .build()
                .unwrap(),
        );
        let n6 = db.interpolated(6.0).unwrap();
        // β(6) interpolates the *overridden* 7 nm entry toward 5 nm.
        assert!((n6.beta() - (800.0 + 600.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn paper_range_violations_detects_outliers() {
        let bad = NodeParameters::builder(ProcessNode::N28)
            .beta(2_000.0)
            .energy_per_area(EnergyPerArea::from_kwh_per_cm2(3.0))
            .tsv_diameter(Length::from_um(30.0))
            .build()
            .unwrap();
        let violations = bad.paper_range_violations();
        assert_eq!(violations.len(), 3);
    }
}
