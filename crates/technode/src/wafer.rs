//! Wafer geometry ([`Wafer`]).

use serde::{Deserialize, Serialize};
use tdc_units::{Area, Length};

/// A silicon wafer of a given diameter.
///
/// The paper's Table 2 bounds wafer area to 31 415.93 – 159 043.13 mm²,
/// i.e. exactly the 200 mm and 450 mm standards; 300 mm is today's
/// production default and the model's default too.
///
/// ```
/// use tdc_units::Length;
/// use tdc_technode::Wafer;
///
/// let wafer = Wafer::W300;
/// assert_eq!(wafer.diameter(), Length::from_mm(300.0));
/// assert!((wafer.area().mm2() - 70_685.8).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Wafer {
    diameter: Length,
}

impl Wafer {
    /// 200 mm ("8-inch") wafer.
    pub const W200: Self = Self {
        diameter: Length::from_mm(200.0),
    };

    /// 300 mm ("12-inch") wafer — the industry workhorse and default.
    pub const W300: Self = Self {
        diameter: Length::from_mm(300.0),
    };

    /// 450 mm wafer (never mass-produced; upper bound of Table 2).
    pub const W450: Self = Self {
        diameter: Length::from_mm(450.0),
    };

    /// A wafer with a custom diameter.
    ///
    /// # Panics
    ///
    /// Panics if `diameter` is not finite and positive.
    #[must_use]
    pub fn with_diameter(diameter: Length) -> Self {
        assert!(
            diameter.mm().is_finite() && diameter.mm() > 0.0,
            "wafer diameter must be finite and positive, got {diameter}"
        );
        Self { diameter }
    }

    /// Wafer diameter.
    #[must_use]
    pub fn diameter(self) -> Length {
        self.diameter
    }

    /// Wafer surface area `π·(d/2)²` — the `A_wafer` of Eq. (5)/(6).
    #[must_use]
    pub fn area(self) -> Area {
        Area::circle_from_diameter(self.diameter)
    }

    /// Gross dies per wafer for dies of area `die_area`, using the
    /// standard edge-corrected formula the paper cites as Eq. (5):
    ///
    /// `DPW = π·(d/2)²/A_die − π·d/√(2·A_die)`
    ///
    /// The second term removes partial dies along the wafer edge. The
    /// result is clamped to ≥ 0 (a die larger than the usable wafer
    /// yields zero) and *not* rounded: downstream carbon-per-die math
    /// divides by this count, and keeping it continuous keeps the model
    /// differentiable for sweeps. Callers wanting physical counts should
    /// `floor()` it.
    ///
    /// Returns `None` when `die_area` is not finite and positive.
    #[must_use]
    pub fn dies_per_wafer(self, die_area: Area) -> Option<f64> {
        let a = die_area.mm2();
        if !a.is_finite() || a <= 0.0 {
            return None;
        }
        let d = self.diameter.mm();
        let gross = self.area().mm2() / a - core::f64::consts::PI * d / (2.0 * a).sqrt();
        Some(gross.max(0.0))
    }
}

impl Default for Wafer {
    fn default() -> Self {
        Self::W300
    }
}

impl core::fmt::Display for Wafer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.0} mm wafer", self.diameter.mm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_wafer_areas_match_table2_bounds() {
        assert!((Wafer::W200.area().mm2() - 31_415.926_5).abs() < 0.1);
        assert!((Wafer::W450.area().mm2() - 159_043.128_1).abs() < 0.1);
        assert!((Wafer::W300.area().mm2() - 70_685.834_7).abs() < 0.1);
    }

    #[test]
    fn default_is_300mm() {
        assert_eq!(Wafer::default(), Wafer::W300);
    }

    #[test]
    fn dies_per_wafer_known_value() {
        // 100 mm² dies on a 300 mm wafer:
        // 70685.83/100 − π·300/√200 = 706.858 − 66.643 = 640.215
        let dpw = Wafer::W300.dies_per_wafer(Area::from_mm2(100.0)).unwrap();
        assert!((dpw - 640.215).abs() < 0.01, "got {dpw}");
    }

    #[test]
    fn dies_per_wafer_monotonically_decreases_with_area() {
        let wafer = Wafer::W300;
        let mut prev = f64::INFINITY;
        for mm2 in [10.0, 25.0, 74.0, 100.0, 400.0, 800.0] {
            let dpw = wafer.dies_per_wafer(Area::from_mm2(mm2)).unwrap();
            assert!(dpw < prev, "DPW must shrink as dies grow");
            prev = dpw;
        }
    }

    #[test]
    fn dies_per_wafer_clamps_to_zero_for_huge_dies() {
        let dpw = Wafer::W200
            .dies_per_wafer(Area::from_mm2(40_000.0))
            .unwrap();
        assert_eq!(dpw, 0.0);
    }

    #[test]
    fn dies_per_wafer_rejects_nonpositive_areas() {
        assert!(Wafer::W300.dies_per_wafer(Area::ZERO).is_none());
        assert!(Wafer::W300.dies_per_wafer(Area::from_mm2(-5.0)).is_none());
        assert!(Wafer::W300
            .dies_per_wafer(Area::from_mm2(f64::NAN))
            .is_none());
    }

    #[test]
    fn bigger_wafers_hold_more_dies() {
        let die = Area::from_mm2(74.0);
        let d200 = Wafer::W200.dies_per_wafer(die).unwrap();
        let d300 = Wafer::W300.dies_per_wafer(die).unwrap();
        let d450 = Wafer::W450.dies_per_wafer(die).unwrap();
        assert!(d200 < d300 && d300 < d450);
    }

    #[test]
    #[should_panic(expected = "wafer diameter")]
    fn custom_wafer_rejects_nonpositive_diameter() {
        let _ = Wafer::with_diameter(Length::from_mm(0.0));
    }

    #[test]
    fn display() {
        assert_eq!(Wafer::W300.to_string(), "300 mm wafer");
    }
}
