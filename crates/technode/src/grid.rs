//! Electrical-grid carbon intensities by region ([`GridRegion`]).

use serde::{Deserialize, Serialize};
use tdc_units::CarbonIntensity;

/// A manufacturing or use location with a known grid carbon intensity.
///
/// The paper's Table 2 bounds `CI_emb`/`CI_use` to 30–700 g CO₂/kWh;
/// this registry spans that range with representative 2022-era grid
/// averages (fab locations from semiconductor-industry geography, use
/// locations for deployment studies) plus the two synthetic extremes.
///
/// ```
/// use tdc_technode::GridRegion;
/// let tw = GridRegion::Taiwan.carbon_intensity();
/// assert!((tw.g_per_kwh() - 509.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum GridRegion {
    /// Taiwan — hosts the bulk of advanced-node capacity (TSMC).
    Taiwan,
    /// South Korea — Samsung/SK hynix fabs.
    SouthKorea,
    /// Japan — legacy-node and packaging capacity.
    Japan,
    /// Mainland China — OSAT and mature-node capacity.
    China,
    /// Singapore — GlobalFoundries and UMC fabs.
    Singapore,
    /// United States, national average.
    UnitedStates,
    /// Arizona, USA — new leading-edge fab cluster.
    Arizona,
    /// Texas, USA — Samsung Austin/Taylor.
    Texas,
    /// Germany — European fab cluster (Dresden).
    Germany,
    /// Ireland — Intel Leixlip.
    Ireland,
    /// France — nuclear-heavy grid, near the clean end.
    France,
    /// Sweden — hydro/nuclear grid at the paper's 30 g floor.
    Sweden,
    /// World average generation mix.
    WorldAverage,
    /// Synthetic coal-dominated grid at the paper's 700 g ceiling.
    CoalHeavy,
    /// Synthetic fully-renewable grid at the paper's 30 g floor.
    Renewable,
}

impl GridRegion {
    /// All registry entries.
    pub const ALL: [GridRegion; 15] = [
        GridRegion::Taiwan,
        GridRegion::SouthKorea,
        GridRegion::Japan,
        GridRegion::China,
        GridRegion::Singapore,
        GridRegion::UnitedStates,
        GridRegion::Arizona,
        GridRegion::Texas,
        GridRegion::Germany,
        GridRegion::Ireland,
        GridRegion::France,
        GridRegion::Sweden,
        GridRegion::WorldAverage,
        GridRegion::CoalHeavy,
        GridRegion::Renewable,
    ];

    /// The region's average grid carbon intensity.
    #[must_use]
    pub fn carbon_intensity(self) -> CarbonIntensity {
        let g_per_kwh = match self {
            GridRegion::Taiwan => 509.0,
            GridRegion::SouthKorea => 436.0,
            GridRegion::Japan => 474.0,
            GridRegion::China => 581.0,
            GridRegion::Singapore => 408.0,
            GridRegion::UnitedStates => 380.0,
            GridRegion::Arizona => 390.0,
            GridRegion::Texas => 410.0,
            GridRegion::Germany => 366.0,
            GridRegion::Ireland => 346.0,
            GridRegion::France => 56.0,
            GridRegion::Sweden => 30.0,
            GridRegion::WorldAverage => 475.0,
            GridRegion::CoalHeavy => 700.0,
            GridRegion::Renewable => 30.0,
        };
        CarbonIntensity::from_g_per_kwh(g_per_kwh)
    }

    /// The scenario-file/CLI token table: `(canonical, aliases,
    /// region)`. The canonical token is what listings print; the
    /// aliases are accepted interchangeably by [`Self::resolve_token`]
    /// (and registered alongside the canonical name by the model
    /// registry).
    pub const TOKENS: &'static [(&'static str, &'static [&'static str], GridRegion)] = &[
        ("taiwan", &["tw"], GridRegion::Taiwan),
        ("south-korea", &["korea", "kr"], GridRegion::SouthKorea),
        ("japan", &["jp"], GridRegion::Japan),
        ("china", &["cn"], GridRegion::China),
        ("singapore", &["sg"], GridRegion::Singapore),
        ("united-states", &["us", "usa"], GridRegion::UnitedStates),
        ("arizona", &[], GridRegion::Arizona),
        ("texas", &[], GridRegion::Texas),
        ("germany", &["de"], GridRegion::Germany),
        ("ireland", &["ie"], GridRegion::Ireland),
        ("france", &["fr"], GridRegion::France),
        ("sweden", &["se"], GridRegion::Sweden),
        (
            "world",
            &["world-average", "global"],
            GridRegion::WorldAverage,
        ),
        ("coal", &["coal-heavy"], GridRegion::CoalHeavy),
        ("renewable", &["green"], GridRegion::Renewable),
    ];

    /// Parses a scenario-file/CLI token into a region
    /// (case-insensitive; hyphens, underscores, and spaces are
    /// interchangeable). Accepts every canonical token and alias in
    /// [`Self::TOKENS`].
    ///
    /// ```
    /// use tdc_technode::GridRegion;
    /// assert_eq!(GridRegion::resolve_token("taiwan"), Some(GridRegion::Taiwan));
    /// assert_eq!(GridRegion::resolve_token("world"), Some(GridRegion::WorldAverage));
    /// assert_eq!(GridRegion::resolve_token("mars"), None);
    /// ```
    #[must_use]
    pub fn resolve_token(token: &str) -> Option<Self> {
        let t = token.trim().to_ascii_lowercase().replace(['_', ' '], "-");
        Self::TOKENS
            .iter()
            .find(|(canonical, aliases, _)| *canonical == t || aliases.contains(&t.as_str()))
            .map(|(_, _, region)| *region)
    }

    /// Parses a scenario-file/CLI token into a region.
    #[deprecated(
        since = "0.1.0",
        note = "use `GridRegion::resolve_token` (or the model \
                                          registry's `resolve`) instead"
    )]
    #[must_use]
    pub fn from_token(token: &str) -> Option<Self> {
        Self::resolve_token(token)
    }

    /// A short human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GridRegion::Taiwan => "Taiwan",
            GridRegion::SouthKorea => "South Korea",
            GridRegion::Japan => "Japan",
            GridRegion::China => "China",
            GridRegion::Singapore => "Singapore",
            GridRegion::UnitedStates => "United States",
            GridRegion::Arizona => "Arizona (US)",
            GridRegion::Texas => "Texas (US)",
            GridRegion::Germany => "Germany",
            GridRegion::Ireland => "Ireland",
            GridRegion::France => "France",
            GridRegion::Sweden => "Sweden",
            GridRegion::WorldAverage => "world average",
            GridRegion::CoalHeavy => "coal-heavy (synthetic)",
            GridRegion::Renewable => "renewable (synthetic)",
        }
    }
}

impl core::fmt::Display for GridRegion {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} ({:.0} g CO₂e/kWh)",
            self.name(),
            self.carbon_intensity().g_per_kwh()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_regions_within_table2_range() {
        for region in GridRegion::ALL {
            let g = region.carbon_intensity().g_per_kwh();
            assert!((29.999..=700.001).contains(&g), "{region}: {g}");
        }
    }

    #[test]
    fn extremes_hit_table2_bounds() {
        let lo = GridRegion::Renewable.carbon_intensity().g_per_kwh();
        let hi = GridRegion::CoalHeavy.carbon_intensity().g_per_kwh();
        assert!((lo - 30.0).abs() < 1e-9);
        assert!((hi - 700.0).abs() < 1e-9);
    }

    #[test]
    fn fab_heavy_regions_are_dirtier_than_france() {
        let france = GridRegion::France.carbon_intensity();
        for region in [
            GridRegion::Taiwan,
            GridRegion::SouthKorea,
            GridRegion::China,
        ] {
            assert!(region.carbon_intensity() > france);
        }
    }

    #[test]
    fn display_and_name() {
        let s = GridRegion::Taiwan.to_string();
        assert!(s.contains("Taiwan") && s.contains("509"));
        assert_eq!(GridRegion::WorldAverage.name(), "world average");
    }

    #[test]
    fn token_table_covers_every_region_and_shims_agree() {
        let mut seen = std::collections::HashSet::new();
        for (canonical, aliases, region) in GridRegion::TOKENS {
            assert!(seen.insert(*region), "duplicate token row for {region:?}");
            assert_eq!(GridRegion::resolve_token(canonical), Some(*region));
            for alias in *aliases {
                assert_eq!(GridRegion::resolve_token(alias), Some(*region), "{alias}");
                #[allow(deprecated)]
                let via_shim = GridRegion::from_token(alias);
                assert_eq!(via_shim, Some(*region));
            }
        }
        assert_eq!(seen.len(), GridRegion::ALL.len());
        assert_eq!(
            GridRegion::resolve_token(" World_Average "),
            Some(GridRegion::WorldAverage)
        );
    }

    #[test]
    fn all_covers_every_variant_once() {
        let mut seen = std::collections::HashSet::new();
        for r in GridRegion::ALL {
            assert!(seen.insert(r), "duplicate {r:?}");
        }
        assert_eq!(seen.len(), GridRegion::ALL.len());
    }
}
