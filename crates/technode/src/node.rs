//! The [`ProcessNode`] identifier.

use serde::{Deserialize, Serialize};

/// A named CMOS process node, covering the paper's supported span of
/// 3 nm – 28 nm (Table 2, "Process").
///
/// The node identifier is a *marketing name*; the parameters attached to
/// it in [`TechnologyDb`](crate::TechnologyDb) are what carry physical
/// meaning. Nodes outside the enumerated set can still be modelled by
/// building [`NodeParameters`](crate::NodeParameters) by hand or via
/// interpolation.
///
/// ```
/// use tdc_technode::ProcessNode;
/// assert_eq!(ProcessNode::N7.nanometers(), 7);
/// assert_eq!(ProcessNode::from_nanometers(16), Some(ProcessNode::N16));
/// assert_eq!(ProcessNode::from_nanometers(6), None);
/// assert!(ProcessNode::N5 < ProcessNode::N28); // finer node sorts first
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ProcessNode {
    /// 3 nm-class node.
    N3,
    /// 5 nm-class node.
    N5,
    /// 7 nm-class node.
    N7,
    /// 8 nm-class node.
    N8,
    /// 10 nm-class node.
    N10,
    /// 12 nm-class node.
    N12,
    /// 14 nm-class node.
    N14,
    /// 16 nm-class node.
    N16,
    /// 20 nm-class node.
    N20,
    /// 22 nm-class node.
    N22,
    /// 28 nm-class node.
    N28,
}

impl ProcessNode {
    /// All known nodes, finest first.
    pub const ALL: [ProcessNode; 11] = [
        ProcessNode::N3,
        ProcessNode::N5,
        ProcessNode::N7,
        ProcessNode::N8,
        ProcessNode::N10,
        ProcessNode::N12,
        ProcessNode::N14,
        ProcessNode::N16,
        ProcessNode::N20,
        ProcessNode::N22,
        ProcessNode::N28,
    ];

    /// The marketing feature size in nanometres.
    #[must_use]
    pub const fn nanometers(self) -> u32 {
        match self {
            ProcessNode::N3 => 3,
            ProcessNode::N5 => 5,
            ProcessNode::N7 => 7,
            ProcessNode::N8 => 8,
            ProcessNode::N10 => 10,
            ProcessNode::N12 => 12,
            ProcessNode::N14 => 14,
            ProcessNode::N16 => 16,
            ProcessNode::N20 => 20,
            ProcessNode::N22 => 22,
            ProcessNode::N28 => 28,
        }
    }

    /// Looks up the node whose marketing size is exactly `nm`.
    #[must_use]
    pub fn from_nanometers(nm: u32) -> Option<Self> {
        Self::ALL.into_iter().find(|n| n.nanometers() == nm)
    }

    /// The nearest known node to `nm` (ties resolve to the finer node).
    ///
    /// ```
    /// use tdc_technode::ProcessNode;
    /// assert_eq!(ProcessNode::nearest(6), ProcessNode::N5);
    /// assert_eq!(ProcessNode::nearest(26), ProcessNode::N28);
    /// assert_eq!(ProcessNode::nearest(100), ProcessNode::N28);
    /// ```
    #[must_use]
    pub fn nearest(nm: u32) -> Self {
        let mut best = ProcessNode::N28;
        let mut best_dist = u32::MAX;
        for node in Self::ALL {
            let dist = node.nanometers().abs_diff(nm);
            if dist < best_dist {
                best = node;
                best_dist = dist;
            }
        }
        best
    }

    /// `true` when this node is at least as fine (advanced) as `other`.
    #[must_use]
    pub fn at_least_as_fine_as(self, other: Self) -> bool {
        self.nanometers() <= other.nanometers()
    }
}

impl core::fmt::Display for ProcessNode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} nm", self.nanometers())
    }
}

/// Error returned when parsing a [`ProcessNode`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeParseError {
    input: String,
}

impl NodeParseError {
    /// The offending input string.
    #[must_use]
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl core::fmt::Display for NodeParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "unknown process node `{}`", self.input)
    }
}

impl std::error::Error for NodeParseError {}

impl core::str::FromStr for ProcessNode {
    type Err = NodeParseError;

    /// Parses strings like `"7"`, `"7nm"`, `"7 nm"`, or `"N7"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s
            .trim()
            .trim_start_matches(['N', 'n'])
            .trim_end_matches(['m', 'M'])
            .trim_end_matches(['n', 'N'])
            .trim();
        trimmed
            .parse::<u32>()
            .ok()
            .and_then(Self::from_nanometers)
            .ok_or_else(|| NodeParseError {
                input: s.to_owned(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::str::FromStr;

    #[test]
    fn nanometers_round_trip_for_all_nodes() {
        for node in ProcessNode::ALL {
            assert_eq!(ProcessNode::from_nanometers(node.nanometers()), Some(node));
        }
    }

    #[test]
    fn all_is_sorted_finest_first() {
        let nms: Vec<u32> = ProcessNode::ALL.iter().map(|n| n.nanometers()).collect();
        let mut sorted = nms.clone();
        sorted.sort_unstable();
        assert_eq!(nms, sorted);
    }

    #[test]
    fn ordering_matches_feature_size() {
        assert!(ProcessNode::N3 < ProcessNode::N5);
        assert!(ProcessNode::N7 < ProcessNode::N28);
        assert!(ProcessNode::N5.at_least_as_fine_as(ProcessNode::N5));
        assert!(ProcessNode::N5.at_least_as_fine_as(ProcessNode::N16));
        assert!(!ProcessNode::N28.at_least_as_fine_as(ProcessNode::N16));
    }

    #[test]
    fn nearest_picks_closest() {
        assert_eq!(ProcessNode::nearest(7), ProcessNode::N7);
        assert_eq!(ProcessNode::nearest(13), ProcessNode::N12);
        assert_eq!(ProcessNode::nearest(4), ProcessNode::N3);
        assert_eq!(ProcessNode::nearest(6), ProcessNode::N5);
        assert_eq!(ProcessNode::nearest(18), ProcessNode::N16);
        assert_eq!(ProcessNode::nearest(0), ProcessNode::N3);
    }

    #[test]
    fn parse_accepts_common_spellings() {
        for s in ["7", "7nm", "7 nm", "N7", "n7", " 7NM "] {
            assert_eq!(ProcessNode::from_str(s).unwrap(), ProcessNode::N7, "{s}");
        }
        assert!(ProcessNode::from_str("6nm").is_err());
        assert!(ProcessNode::from_str("banana").is_err());
        let err = ProcessNode::from_str("9nm").unwrap_err();
        assert_eq!(err.input(), "9nm");
        assert!(err.to_string().contains("9nm"));
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(ProcessNode::N7.to_string(), "7 nm");
        assert_eq!(ProcessNode::N28.to_string(), "28 nm");
    }
}
