//! Surveyed compute energy-efficiency trend ([`EfficiencySurvey`]).
//!
//! When the user gives no measured `Eff_die`, the paper falls back to
//! "surveyed parameters" (its §3.3, citing the PPA study of Kim et
//! al. [19] and the DRIVE datasheets). We reproduce that fallback as a
//! small per-node survey plus a Koomey-style exponential improvement in
//! deployment year, fitted to the paper's own Table 4 (0.75 TOPS/W in
//! 2016 → 12.5 TOPS/W in 2022).

use crate::node::ProcessNode;
use serde::{Deserialize, Serialize};
use tdc_units::Efficiency;

/// Reference year of the per-node base survey.
const SURVEY_BASE_YEAR: i32 = 2019;

/// Energy-efficiency doubling period in years, fitted to Table 4:
/// Xavier (1 TOPS/W, 2017) → Thor (12.5 TOPS/W, 2022) is ×12.5 in five
/// years, i.e. doubling every `5·ln2 / ln 12.5` ≈ 1.37 years. Part of
/// that jump is architectural (tensor formats), so we keep the more
/// conservative 1.9-year doubling typical of edge accelerators and let
/// the node term carry the rest.
const DOUBLING_PERIOD_YEARS: f64 = 1.9;

/// Per-node, per-year survey of accelerator energy efficiency.
///
/// ```
/// use tdc_technode::{EfficiencySurvey, ProcessNode};
/// let survey = EfficiencySurvey::default();
/// let at_launch = survey.efficiency(ProcessNode::N7, 2019);
/// let later = survey.efficiency(ProcessNode::N7, 2023);
/// assert!(later > at_launch);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EfficiencySurvey {
    _private: (),
}

impl EfficiencySurvey {
    /// Creates the default survey.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Surveyed efficiency of a `node`-class accelerator shipping in
    /// the survey's base year (2019).
    #[must_use]
    pub fn base_efficiency(self, node: ProcessNode) -> Efficiency {
        let tops_per_watt = match node {
            ProcessNode::N3 => 9.5,
            ProcessNode::N5 => 6.5,
            ProcessNode::N7 => 2.74, // pinned to DRIVE Orin (Table 4)
            ProcessNode::N8 => 2.2,
            ProcessNode::N10 => 1.7,
            ProcessNode::N12 => 1.3,
            ProcessNode::N14 => 1.1,
            ProcessNode::N16 => 0.95,
            ProcessNode::N20 => 0.7,
            ProcessNode::N22 => 0.6,
            ProcessNode::N28 => 0.45,
        };
        Efficiency::from_tops_per_watt(tops_per_watt)
    }

    /// Efficiency projected to `year` with the survey's exponential
    /// improvement trend.
    #[must_use]
    pub fn efficiency(self, node: ProcessNode, year: i32) -> Efficiency {
        let dt = f64::from(year - SURVEY_BASE_YEAR);
        let growth = 2.0_f64.powf(dt / DOUBLING_PERIOD_YEARS);
        self.base_efficiency(node) * growth
    }
}

/// Convenience: surveyed base-year efficiency for `node`
/// (`EfficiencySurvey::default().base_efficiency(node)`).
#[must_use]
pub fn surveyed_efficiency(node: ProcessNode) -> Efficiency {
    EfficiencySurvey::default().base_efficiency(node)
}

/// Convenience: efficiency projected to `year`
/// (`EfficiencySurvey::default().efficiency(node, year)`).
#[must_use]
pub fn projected_efficiency(node: ProcessNode, year: i32) -> Efficiency {
    EfficiencySurvey::default().efficiency(node, year)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finer_nodes_are_more_efficient() {
        let survey = EfficiencySurvey::default();
        let mut prev = f64::INFINITY;
        for node in ProcessNode::ALL {
            let eff = survey.base_efficiency(node).tops_per_watt();
            assert!(eff <= prev, "{node:?}");
            prev = eff;
        }
    }

    #[test]
    fn orin_pin_matches_table4() {
        assert_eq!(surveyed_efficiency(ProcessNode::N7).tops_per_watt(), 2.74);
    }

    #[test]
    fn projection_doubles_every_period() {
        let now = projected_efficiency(ProcessNode::N7, 2019);
        let later = projected_efficiency(ProcessNode::N7, 2019 + 19 / 10);
        assert!(later >= now);
        let doubled = projected_efficiency(ProcessNode::N7, 2021);
        let expected = now.tops_per_watt() * 2.0_f64.powf(2.0 / DOUBLING_PERIOD_YEARS);
        assert!((doubled.tops_per_watt() - expected).abs() < 1e-12);
    }

    #[test]
    fn projection_backwards_in_time_decays() {
        let past = projected_efficiency(ProcessNode::N16, 2016);
        let base = surveyed_efficiency(ProcessNode::N16);
        assert!(past < base);
        // PX2-era 16 nm should land in the ballpark of Table 4's 0.75.
        assert!(
            (0.2..=0.8).contains(&past.tops_per_watt()),
            "got {}",
            past.tops_per_watt()
        );
    }
}
