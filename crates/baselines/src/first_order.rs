//! The first-order die-size model — Eeckhout, IEEE CAL 2022.

use tdc_technode::{GridRegion, ProcessNode, TechnologyDb};
use tdc_units::{Area, CarbonPerArea, Co2Mass};

/// The single per-node coefficient of the first-order model: embodied
/// carbon per unit die area, with a typical yield folded in. Derived
/// from the same per-area characterization as ACT so the baselines
/// stay mutually consistent:
/// `k = (CI_fab · EPA + GPA + MPA) / y_typical` with `y_typical`
/// evaluated at a 100 mm² reference die.
#[must_use]
pub fn first_order_coefficient(node: ProcessNode) -> CarbonPerArea {
    let db = TechnologyDb::default();
    let params = db.node(node);
    let ci = GridRegion::Taiwan.carbon_intensity();
    let per_area =
        ci * params.energy_per_area() + params.gas_per_area() + params.material_per_area();
    let reference = Area::from_mm2(100.0);
    let y = tdc_yield::DieYieldModel::NegativeBinomial {
        alpha: params.clustering_alpha(),
    }
    .die_yield(reference, params.defect_density_per_cm2())
    .expect("reference area is valid");
    per_area * (1.0 / y)
}

/// First-order embodied estimate: `k(node) · A_die`. Linear in area by
/// construction — the model's defining simplification (and the reason
/// it cannot see yield cliffs, BEOL savings, or packaging geometry).
#[must_use]
pub fn first_order_embodied(node: ProcessNode, area: Area) -> Co2Mass {
    first_order_coefficient(node) * area
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_in_area_by_construction() {
        let a = first_order_embodied(ProcessNode::N7, Area::from_mm2(100.0));
        let b = first_order_embodied(ProcessNode::N7, Area::from_mm2(200.0));
        assert!((b.kg() - 2.0 * a.kg()).abs() < 1e-9);
    }

    #[test]
    fn coefficient_grows_toward_advanced_nodes() {
        let mut prev = f64::INFINITY;
        for node in ProcessNode::ALL {
            let k = first_order_coefficient(node).kg_per_cm2();
            assert!(k <= prev, "{node}");
            prev = k;
        }
    }

    #[test]
    fn coefficient_is_plausible_magnitude() {
        // ~1 kg CO₂e/cm² for leading-edge silicon, as widely reported.
        let k7 = first_order_coefficient(ProcessNode::N7).kg_per_cm2();
        assert!((0.5..2.5).contains(&k7), "got {k7}");
    }
}
