//! The ACT+ baseline ([`ActPlusModel`]) — Elgamal et al., 2023.

use crate::act::{ActModel, ACT_PACKAGING_KG};
use tdc_technode::ProcessNode;
use tdc_units::{Area, Co2Mass};
use tdc_yield::YieldError;

/// A die handed to ACT+ (node + area is all it looks at).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DieInput {
    /// Process node.
    pub node: ProcessNode,
    /// Die area.
    pub area: Area,
}

/// The package class ACT+ distinguishes when extrapolating multi-die
/// overheads from cost data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackageClass {
    /// Plain 2D single-die package.
    Monolithic,
    /// 3D stack — ACT+ "simplistically treats 3D stacked dies as 2D"
    /// (paper §1): dies are summed with no bonding or stacking-yield
    /// terms.
    ThreeD,
    /// 2.5D without a silicon substrate (MCM-class): per-die cost
    /// uplift only.
    TwoPointFiveDOrganic,
    /// 2.5D with a silicon interposer / bridge: larger cost uplift.
    TwoPointFiveDSilicon,
}

impl PackageClass {
    /// ACT+'s cost-ratio uplift over the summed 2D dies: the released
    /// methodology scales die manufacturing cost to estimate the
    /// multi-die assembly's footprint (no geometric substrate model).
    #[must_use]
    pub fn cost_uplift(self) -> f64 {
        match self {
            PackageClass::Monolithic | PackageClass::ThreeD => 0.0,
            PackageClass::TwoPointFiveDOrganic => 0.03,
            PackageClass::TwoPointFiveDSilicon => 0.08,
        }
    }
}

/// ACT+ result with its coarse breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActPlusResult {
    /// Summed per-die footprints (ACT formula).
    pub dies: Co2Mass,
    /// Cost-ratio uplift charged for the multi-die assembly.
    pub assembly_uplift: Co2Mass,
    /// The fixed packaging constant.
    pub packaging: Co2Mass,
}

impl ActPlusResult {
    /// Total ACT+ embodied carbon.
    #[must_use]
    pub fn total(&self) -> Co2Mass {
        self.dies + self.assembly_uplift + self.packaging
    }
}

/// The ACT+ extension of ACT to multi-die products.
#[derive(Debug, Clone, Default)]
pub struct ActPlusModel {
    act: ActModel,
}

impl ActPlusModel {
    /// Creates an ACT+ model over a custom ACT base.
    #[must_use]
    pub fn new(act: ActModel) -> Self {
        Self { act }
    }

    /// The underlying ACT model.
    #[must_use]
    pub fn act(&self) -> &ActModel {
        &self.act
    }

    /// Embodied carbon of a (multi-)die product.
    ///
    /// # Errors
    ///
    /// Returns [`YieldError`] on non-physical die areas.
    pub fn embodied(
        &self,
        dies: &[DieInput],
        class: PackageClass,
    ) -> Result<ActPlusResult, YieldError> {
        let mut die_total = Co2Mass::ZERO;
        for die in dies {
            die_total += self.act.die_embodied(die.node, die.area)?;
        }
        Ok(ActPlusResult {
            dies: die_total,
            assembly_uplift: die_total * class.cost_uplift(),
            packaging: Co2Mass::from_kg(ACT_PACKAGING_KG),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epyc_dies() -> Vec<DieInput> {
        let mut dies = vec![
            DieInput {
                node: ProcessNode::N7,
                area: Area::from_mm2(74.0),
            };
            4
        ];
        dies.push(DieInput {
            node: ProcessNode::N14,
            area: Area::from_mm2(416.0),
        });
        dies
    }

    #[test]
    fn three_d_is_just_summed_dies_plus_constant() {
        let model = ActPlusModel::default();
        let dies = [
            DieInput {
                node: ProcessNode::N7,
                area: Area::from_mm2(82.0),
            },
            DieInput {
                node: ProcessNode::N14,
                area: Area::from_mm2(92.0),
            },
        ];
        let r = model.embodied(&dies, PackageClass::ThreeD).unwrap();
        assert_eq!(r.assembly_uplift, Co2Mass::ZERO);
        let act = ActModel::default();
        let expect = act
            .die_embodied(ProcessNode::N7, Area::from_mm2(82.0))
            .unwrap()
            + act
                .die_embodied(ProcessNode::N14, Area::from_mm2(92.0))
                .unwrap();
        assert!((r.dies.kg() - expect.kg()).abs() < 1e-12);
        assert!((r.total().kg() - expect.kg() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn silicon_25d_uplift_exceeds_organic() {
        let model = ActPlusModel::default();
        let dies = epyc_dies();
        let organic = model
            .embodied(&dies, PackageClass::TwoPointFiveDOrganic)
            .unwrap();
        let silicon = model
            .embodied(&dies, PackageClass::TwoPointFiveDSilicon)
            .unwrap();
        assert!(silicon.assembly_uplift > organic.assembly_uplift);
        assert_eq!(organic.dies, silicon.dies);
    }

    #[test]
    fn packaging_never_scales_with_area() {
        let model = ActPlusModel::default();
        let small = model
            .embodied(
                &[DieInput {
                    node: ProcessNode::N7,
                    area: Area::from_mm2(10.0),
                }],
                PackageClass::Monolithic,
            )
            .unwrap();
        let large = model
            .embodied(&epyc_dies(), PackageClass::TwoPointFiveDOrganic)
            .unwrap();
        assert_eq!(small.packaging, large.packaging);
        assert!((small.packaging.kg() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn uplifts_are_small_fractions() {
        for class in [
            PackageClass::Monolithic,
            PackageClass::ThreeD,
            PackageClass::TwoPointFiveDOrganic,
            PackageClass::TwoPointFiveDSilicon,
        ] {
            assert!((0.0..0.2).contains(&class.cost_uplift()));
        }
    }
}
