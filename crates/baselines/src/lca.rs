//! GaBi-style LCA reference entries ([`LcaDatabase`]).
//!
//! The paper validates against per-product numbers from the commercial
//! GaBi LCA database [14], which we cannot ship. These entries are
//! *synthetic stand-ins* reverse-engineered from the paper's own
//! statements (§4.1–4.2):
//!
//! * the LCA figure for EPYC 7452 sits ≈4.4 % **above** 3D-Carbon's
//!   2D-adjusted estimate (LCA treats the product as one monolithic
//!   die);
//! * GaBi has no 7 nm entry, so Lakefield is assessed with **both**
//!   dies at 14 nm — an *underestimate* relative to models that price
//!   the real 7 nm logic die.
//!
//! The code path — comparing a model against an external per-product
//! LCA number — is identical to the paper's; only the numbers are
//! reconstructed.

use serde::{Deserialize, Serialize};
use tdc_units::Co2Mass;

/// One per-product LCA record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LcaEntry {
    /// Product name (lookup key).
    pub product: String,
    /// Reported embodied carbon.
    pub embodied: Co2Mass,
    /// Methodology note (what the LCA actually assessed).
    pub note: String,
}

/// A small registry of [`LcaEntry`] records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LcaDatabase {
    entries: Vec<LcaEntry>,
}

/// Lookup key for the AMD EPYC 7452 entry.
pub const EPYC_7452: &str = "AMD EPYC 7452";
/// Lookup key for the Intel Lakefield entry.
pub const LAKEFIELD: &str = "Intel Lakefield";

impl Default for LcaDatabase {
    fn default() -> Self {
        Self {
            entries: vec![
                LcaEntry {
                    product: EPYC_7452.to_owned(),
                    embodied: Co2Mass::from_kg(23.77),
                    note: "assessed as one monolithic 2D die of the total silicon \
                           area; calibrated to sit ≈4.4 % above this repo's \
                           2D-adjusted 3D-Carbon estimate, mirroring the paper's \
                           §4.1 relation (synthetic GaBi stand-in)"
                        .to_owned(),
                },
                LcaEntry {
                    product: LAKEFIELD.to_owned(),
                    embodied: Co2Mass::from_kg(1.4),
                    note: "no 7 nm dataset available: both dies assessed at 14 nm, \
                           underestimating the real 7 nm compute die (synthetic GaBi \
                           stand-in)"
                        .to_owned(),
                },
            ],
        }
    }
}

impl LcaDatabase {
    /// Looks up a product's entry.
    #[must_use]
    pub fn entry(&self, product: &str) -> Option<&LcaEntry> {
        self.entries.iter().find(|e| e.product == product)
    }

    /// Looks up a product's embodied carbon.
    #[must_use]
    pub fn embodied(&self, product: &str) -> Option<Co2Mass> {
        self.entry(product).map(|e| e.embodied)
    }

    /// Adds or replaces an entry (for calibration studies).
    pub fn upsert(&mut self, entry: LcaEntry) {
        if let Some(slot) = self.entries.iter_mut().find(|e| e.product == entry.product) {
            *slot = entry;
        } else {
            self.entries.push(entry);
        }
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> impl Iterator<Item = &LcaEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_entries_exist() {
        let db = LcaDatabase::default();
        assert!(db.embodied(EPYC_7452).unwrap().kg() > 10.0);
        assert!(db.embodied(LAKEFIELD).unwrap().kg() < 5.0);
        assert!(db.entry("nonexistent").is_none());
        assert_eq!(db.iter().count(), 2);
    }

    #[test]
    fn upsert_replaces_and_inserts() {
        let mut db = LcaDatabase::default();
        db.upsert(LcaEntry {
            product: EPYC_7452.to_owned(),
            embodied: Co2Mass::from_kg(20.0),
            note: "recalibrated".to_owned(),
        });
        assert!((db.embodied(EPYC_7452).unwrap().kg() - 20.0).abs() < 1e-12);
        assert_eq!(db.iter().count(), 2);
        db.upsert(LcaEntry {
            product: "new product".to_owned(),
            embodied: Co2Mass::from_kg(1.0),
            note: String::new(),
        });
        assert_eq!(db.iter().count(), 3);
    }
}
