//! Baseline carbon models that the paper validates 3D-Carbon against
//! (§4, Fig. 4).
//!
//! * [`ActModel`] — the ACT architectural carbon model (Gupta et al.,
//!   ISCA'22): per-area fab footprint divided by die yield, plus a
//!   fixed per-package packaging constant.
//! * [`ActPlusModel`] — the ACT+ extension (Elgamal et al. 2023):
//!   handles 2.5D assemblies by cost-ratio extrapolation and
//!   "simplistically treats 3D stacked dies as 2D" (the paper's own
//!   characterization), keeping ACT's fixed 0.15 kg packaging carbon.
//! * [`first_order_embodied`] — the one-coefficient die-size model of
//!   Eeckhout (CAL'22).
//! * [`LcaDatabase`] — GaBi-style per-product LCA reference entries
//!   (synthetic stand-ins; see `DESIGN.md` §2 for the substitution
//!   rationale).
//! * [`greenchip`] — the literal Eq. 2 metric formulas of GreenChip
//!   (Kline et al.), used to cross-check `tdc-core`'s decision logic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod act;
mod act_plus;
mod first_order;
pub mod greenchip;
mod lca;

pub use act::ActModel;
pub use act_plus::{ActPlusModel, ActPlusResult, DieInput, PackageClass};
pub use first_order::{first_order_coefficient, first_order_embodied};
pub use lca::{LcaDatabase, LcaEntry, EPYC_7452, LAKEFIELD};
