//! GreenChip's decision metrics (Kline et al., SUSCOM 2019) — the
//! literal Eq. 2 formulas, kept raw for cross-checking the richer
//! outcome classification in `tdc-core`.

use tdc_units::{CarbonIntensity, Co2Mass, Power, TimeSpan};

/// Eq. 2, left: the indifference point
/// `T_c = (C^{3D/2.5D}_emb − C^{2D}_emb) / (CI_use · (P^{2D} − P^{3D/2.5D}))`.
///
/// Returned raw: negative values mean the crossing lies in the past
/// (the alternative dominates from day one), infinities mean the
/// curves never cross. `None` only when the denominator is exactly
/// zero *and* the numerator is zero (designs are identical).
#[must_use]
pub fn indifference_point(
    emb_2d: Co2Mass,
    emb_alt: Co2Mass,
    power_2d: Power,
    power_alt: Power,
    ci_use: CarbonIntensity,
) -> Option<TimeSpan> {
    let num = emb_alt - emb_2d;
    let rate = ci_use * (power_2d - power_alt);
    if rate.kg_per_hour() == 0.0 {
        if num.kg() == 0.0 {
            return None;
        }
        return Some(if num.kg() > 0.0 {
            TimeSpan::INFINITE
        } else {
            -TimeSpan::INFINITE
        });
    }
    Some(TimeSpan::from_hours(num.kg() / rate.kg_per_hour()))
}

/// Eq. 2, right: the breakeven time
/// `T_r = C^{3D/2.5D}_emb / (CI_use · (P^{2D} − P^{3D/2.5D}))`.
///
/// Infinite (never pays back) when the alternative saves no power.
#[must_use]
pub fn breakeven_time(
    emb_alt: Co2Mass,
    power_2d: Power,
    power_alt: Power,
    ci_use: CarbonIntensity,
) -> TimeSpan {
    let rate = ci_use * (power_2d - power_alt);
    if rate.kg_per_hour() <= 0.0 {
        return TimeSpan::INFINITE;
    }
    TimeSpan::from_hours(emb_alt.kg() / rate.kg_per_hour())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ci() -> CarbonIntensity {
        CarbonIntensity::from_g_per_kwh(475.0)
    }

    #[test]
    fn indifference_point_closed_form() {
        let t = indifference_point(
            Co2Mass::from_kg(100.0),
            Co2Mass::from_kg(150.0),
            Power::from_watts(100.0),
            Power::from_watts(80.0),
            ci(),
        )
        .unwrap();
        assert!((t.hours() - 50.0 / (0.475 * 0.02)).abs() < 1e-6);
    }

    #[test]
    fn negative_crossing_when_alt_dominates() {
        let t = indifference_point(
            Co2Mass::from_kg(100.0),
            Co2Mass::from_kg(80.0),
            Power::from_watts(100.0),
            Power::from_watts(90.0),
            ci(),
        )
        .unwrap();
        assert!(t.hours() < 0.0);
    }

    #[test]
    fn equal_power_cases() {
        let t = indifference_point(
            Co2Mass::from_kg(100.0),
            Co2Mass::from_kg(120.0),
            Power::from_watts(100.0),
            Power::from_watts(100.0),
            ci(),
        )
        .unwrap();
        assert!(t.is_infinite() && t.hours() > 0.0);
        assert!(indifference_point(
            Co2Mass::from_kg(100.0),
            Co2Mass::from_kg(100.0),
            Power::from_watts(100.0),
            Power::from_watts(100.0),
            ci(),
        )
        .is_none());
    }

    #[test]
    fn breakeven_matches_closed_form_and_saturates() {
        let t = breakeven_time(
            Co2Mass::from_kg(150.0),
            Power::from_watts(100.0),
            Power::from_watts(80.0),
            ci(),
        );
        assert!((t.hours() - 150.0 / (0.475 * 0.02)).abs() < 1e-6);
        let never = breakeven_time(
            Co2Mass::from_kg(150.0),
            Power::from_watts(80.0),
            Power::from_watts(100.0),
            ci(),
        );
        assert!(never.is_infinite());
    }
}
