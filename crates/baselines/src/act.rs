//! The ACT baseline ([`ActModel`]) — Gupta et al., ISCA 2022.

use tdc_technode::{GridRegion, ProcessNode, TechnologyDb};
use tdc_units::{Area, Co2Mass};
use tdc_yield::{DieYieldModel, YieldError};

/// ACT's architectural carbon model:
///
/// `C_die = (CI_fab · EPA + GPA + MPA) · A_die / y_die`, plus a fixed
/// per-package packaging constant (0.15 kg in the released tool).
///
/// Differences from 3D-Carbon that the paper's Fig. 4 isolates:
///
/// * no dies-per-wafer edge losses (footprint is linear in area),
/// * no BEOL-configuration adjustment (every die pays for the full
///   metal stack),
/// * packaging is a constant, not an area model,
/// * one die at a time — no bonding, stacking-yield, or substrate
///   terms.
///
/// ```
/// use tdc_baselines::ActModel;
/// use tdc_technode::ProcessNode;
/// use tdc_units::Area;
///
/// let act = ActModel::default();
/// let c = act.die_embodied(ProcessNode::N7, Area::from_mm2(74.0)).unwrap();
/// assert!(c.kg() > 0.3 && c.kg() < 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct ActModel {
    db: TechnologyDb,
    fab_region: GridRegion,
}

/// ACT's fixed per-package packaging carbon (kg CO₂e).
pub(crate) const ACT_PACKAGING_KG: f64 = 0.15;

impl Default for ActModel {
    fn default() -> Self {
        Self {
            db: TechnologyDb::default(),
            fab_region: GridRegion::Taiwan,
        }
    }
}

impl ActModel {
    /// Creates an ACT model over a custom technology database and fab
    /// location.
    #[must_use]
    pub fn new(db: TechnologyDb, fab_region: GridRegion) -> Self {
        Self { db, fab_region }
    }

    /// The fab region in use.
    #[must_use]
    pub fn fab_region(&self) -> GridRegion {
        self.fab_region
    }

    /// ACT's fixed packaging carbon.
    #[must_use]
    pub fn packaging(&self) -> Co2Mass {
        Co2Mass::from_kg(ACT_PACKAGING_KG)
    }

    /// Die fab yield under ACT (negative binomial with the node's
    /// clustering parameter — ACT and 3D-Carbon share this input).
    ///
    /// # Errors
    ///
    /// Returns [`YieldError`] on non-physical areas.
    pub fn die_yield(&self, node: ProcessNode, area: Area) -> Result<f64, YieldError> {
        let params = self.db.node(node);
        DieYieldModel::NegativeBinomial {
            alpha: params.clustering_alpha(),
        }
        .die_yield(area, params.defect_density_per_cm2())
    }

    /// Embodied carbon of one die, excluding packaging.
    ///
    /// # Errors
    ///
    /// Returns [`YieldError`] on non-physical areas.
    pub fn die_embodied(&self, node: ProcessNode, area: Area) -> Result<Co2Mass, YieldError> {
        let params = self.db.node(node);
        let ci = self.fab_region.carbon_intensity();
        let per_area =
            ci * params.energy_per_area() + params.gas_per_area() + params.material_per_area();
        let y = self.die_yield(node, area)?;
        Ok(per_area * area / y)
    }

    /// Embodied carbon of a single-die (2D) product: die + fixed
    /// packaging.
    ///
    /// # Errors
    ///
    /// Returns [`YieldError`] on non-physical areas.
    pub fn chip_embodied(&self, node: ProcessNode, area: Area) -> Result<Co2Mass, YieldError> {
        Ok(self.die_embodied(node, area)? + self.packaging())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_area_formula_matches_hand_value() {
        let act = ActModel::default();
        // 7 nm, Taiwan grid: (0.509·0.8 + 0.2 + 0.32) kg/cm².
        let per_area = 0.509 * 0.8 + 0.2 + 0.32;
        let area = Area::from_cm2(1.0);
        let y = act.die_yield(ProcessNode::N7, area).unwrap();
        let c = act.die_embodied(ProcessNode::N7, area).unwrap();
        assert!((c.kg() - per_area / y).abs() < 1e-9);
    }

    #[test]
    fn embodied_grows_superlinearly_with_area() {
        // Yield decay makes 2× area cost more than 2× carbon.
        let act = ActModel::default();
        let small = act
            .die_embodied(ProcessNode::N7, Area::from_mm2(100.0))
            .unwrap();
        let large = act
            .die_embodied(ProcessNode::N7, Area::from_mm2(200.0))
            .unwrap();
        assert!(large.kg() > 2.0 * small.kg());
    }

    #[test]
    fn advanced_nodes_cost_more_per_area() {
        let act = ActModel::default();
        let area = Area::from_mm2(100.0);
        let n28 = act.die_embodied(ProcessNode::N28, area).unwrap();
        let n7 = act.die_embodied(ProcessNode::N7, area).unwrap();
        let n3 = act.die_embodied(ProcessNode::N3, area).unwrap();
        assert!(n28 < n7);
        assert!(n7 < n3);
    }

    #[test]
    fn packaging_is_the_fixed_constant() {
        let act = ActModel::default();
        assert!((act.packaging().kg() - 0.15).abs() < 1e-12);
        let die = act
            .die_embodied(ProcessNode::N7, Area::from_mm2(74.0))
            .unwrap();
        let chip = act
            .chip_embodied(ProcessNode::N7, Area::from_mm2(74.0))
            .unwrap();
        assert!((chip.kg() - die.kg() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn cleaner_fab_grid_reduces_footprint() {
        let dirty = ActModel::new(TechnologyDb::default(), GridRegion::CoalHeavy);
        let clean = ActModel::new(TechnologyDb::default(), GridRegion::Renewable);
        let area = Area::from_mm2(100.0);
        assert!(
            clean.die_embodied(ProcessNode::N7, area).unwrap()
                < dirty.die_embodied(ProcessNode::N7, area).unwrap()
        );
        assert_eq!(clean.fab_region(), GridRegion::Renewable);
    }

    #[test]
    fn invalid_area_errors() {
        let act = ActModel::default();
        assert!(act
            .die_embodied(ProcessNode::N7, Area::from_mm2(-1.0))
            .is_err());
    }
}
