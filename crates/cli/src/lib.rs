//! # tdc-cli
//!
//! The library behind the `tdc` binary: scenario-file loading
//! ([`Scenario`]), the dependency-free JSON tree it parses into
//! ([`JsonValue`]), and the report renderers ([`report`]) that turn
//! model results into `table` / `json` / `csv` output.
//!
//! The binary is a thin shell over this crate — every behaviour is
//! reachable (and tested) as a plain function call:
//!
//! ```
//! use tdc_cli::report::{render_sweep, OutputFormat};
//! use tdc_cli::Scenario;
//! use tdc_core::sweep::SweepExecutor;
//! use tdc_core::CarbonModel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = Scenario::parse(
//!     r#"{
//!       "name": "demo",
//!       "workload": {"throughput_tops": 100, "active_hours": 10000},
//!       "sweep": {"gate_count": 10e9, "nodes_nm": [7], "workers": 2}
//!     }"#,
//! )?;
//! let model = CarbonModel::new(scenario.build_context()?);
//! let workload = scenario.build_workload()?.expect("sweep needs a workload");
//! let plan = scenario.build_sweep()?.plan()?;
//! let result = SweepExecutor::new(scenario.sweep_workers().unwrap_or(0))
//!     .execute(&model, &plan, &workload)?;
//! let report = render_sweep(&scenario.name, result.entries(), OutputFormat::Csv);
//! assert!(report.starts_with("rank,label,"));
//! # Ok(())
//! # }
//! ```
//!
//! Scenario files are documented, with one runnable example per
//! workload family, in `docs/SCENARIOS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod json;
pub mod packs;
pub mod profile;
pub mod report;
mod scenario;
pub mod serve;
mod table;

pub use json::{JsonError, JsonValue};
pub use scenario::{RequestKind, Scenario, ScenarioError};
