//! Compatibility shim: the hand-rolled JSON tree moved to
//! [`tdc_registry::json`] so the registry's pack loader and the CLI's
//! scenario parser share one implementation. Everything is re-exported
//! here so `crate::json::` paths (and the crate-root `JsonValue` /
//! `JsonError` re-exports) keep working unchanged.

pub use tdc_registry::json::*;
