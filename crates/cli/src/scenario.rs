//! Scenario files ([`Scenario`]): the declarative input of the `tdc`
//! CLI.
//!
//! A scenario is a JSON document with up to six blocks, all of which
//! are documented with runnable examples in `docs/SCENARIOS.md`:
//!
//! * `packs` — technology-pack files ([`tdc_registry::pack`]) loaded
//!   into the model registry before any name below resolves, so a
//!   scenario can redefine or extend the shipped catalogs as data.
//!   Relative paths are scenario-file-relative. Optional;
//! * `design` — what chip to evaluate: either `{"preset": "..."}`
//!   (resolved through the registry's design-preset grammar) or an
//!   explicit die list plus integration technology;
//! * `workload` — the mission profile: an AV preset or an explicit
//!   fixed-throughput profile. Optional: without it, `tdc run` reports
//!   embodied carbon only;
//! * `context` — overrides of the model configuration (fab/use grid,
//!   wafer, yield model, power model, ablation knobs). Optional;
//! * `sweep` — the design-space axes (`tdc sweep`): gate budget,
//!   nodes, technologies, tier counts, workers. Optional;
//! * `explore` — the exploration layer over the sweep plan
//!   (`tdc explore`): objectives, constraints, Eq. 2 baseline, and
//!   adaptive refinement. Optional; requires a `sweep` block.
//!
//! Structural checks (types, unknown fields, numeric domains) happen
//! at parse time; *names* — presets, technologies, grid regions, yield
//! and power models — resolve at build time through one
//! [`Registry`], after the scenario's packs have loaded. That is what
//! lets a pack-defined technology appear anywhere a built-in one can.

use crate::json::{JsonError, JsonValue};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use tdc_core::explore::{Constraint, ExploreSpec, Objective, RefineAxis, RefineSpec};
use tdc_core::service::EvalRequest;
use tdc_core::sweep::DesignSweep;
use tdc_core::{ChipDesign, DieSpec, ModelContext, ModelError, Workload};
use tdc_floorplan::PackageModel;
use tdc_integration::{IntegrationFamily, IntegrationTechnology, StackOrientation};
use tdc_registry::{Params, Registry, RegistryError};
use tdc_technode::{ProcessNode, Wafer};
use tdc_traces::TraceReader;
use tdc_units::{Area, Efficiency, Length, Throughput, TimeSpan};
use tdc_workloads::design_preset_context;
use tdc_yield::StackingFlow;

/// Why a scenario could not be loaded or elaborated.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The file is not valid JSON.
    Json(JsonError),
    /// The JSON is valid but violates the scenario schema; the path
    /// names the offending field (e.g. `design.dies[0].node_nm`).
    Schema {
        /// Dotted path of the offending field.
        path: String,
        /// What is wrong with it.
        message: String,
    },
    /// The scenario is well-formed but the model rejected it.
    Model(ModelError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Json(e) => write!(f, "{e}"),
            ScenarioError::Schema { path, message } => {
                write!(f, "scenario field `{path}`: {message}")
            }
            ScenarioError::Model(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<ModelError> for ScenarioError {
    fn from(e: ModelError) -> Self {
        ScenarioError::Model(e)
    }
}

fn schema_err<T>(path: impl Into<String>, message: impl Into<String>) -> Result<T, ScenarioError> {
    Err(ScenarioError::Schema {
        path: path.into(),
        message: message.into(),
    })
}

/// Maps a registry failure onto the scenario error taxonomy: model
/// rejections stay [`ScenarioError::Model`] (the design was
/// well-formed), everything else is a schema error at `path`.
fn registry_err(path: impl Into<String>, err: RegistryError) -> ScenarioError {
    match err {
        RegistryError::Model(e) => ScenarioError::Model(e),
        other => ScenarioError::Schema {
            path: path.into(),
            message: other.to_string(),
        },
    }
}

/// Typed field extraction helpers over a JSON object.
struct Fields<'a> {
    value: &'a JsonValue,
    path: String,
}

impl<'a> Fields<'a> {
    fn new(value: &'a JsonValue, path: impl Into<String>) -> Result<Self, ScenarioError> {
        let path = path.into();
        if value.as_object().is_none() {
            return schema_err(
                &path,
                format!("expected an object, got {}", value.type_name()),
            );
        }
        Ok(Self { value, path })
    }

    fn child(&self, key: &str) -> String {
        if self.path.is_empty() {
            key.to_owned()
        } else {
            format!("{}.{key}", self.path)
        }
    }

    fn get(&self, key: &str) -> Option<&'a JsonValue> {
        self.value.get(key)
    }

    fn number(&self, key: &str) -> Result<Option<f64>, ScenarioError> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v.as_f64().map(Some).ok_or(()).or_else(|()| {
                schema_err(
                    self.child(key),
                    format!("expected a number, got {}", v.type_name()),
                )
            }),
        }
    }

    fn required_number(&self, key: &str) -> Result<f64, ScenarioError> {
        self.number(key)?.map_or_else(
            || schema_err(self.child(key), "required field is missing"),
            Ok,
        )
    }

    fn string(&self, key: &str) -> Result<Option<&'a str>, ScenarioError> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v.as_str().map(Some).ok_or(()).or_else(|()| {
                schema_err(
                    self.child(key),
                    format!("expected a string, got {}", v.type_name()),
                )
            }),
        }
    }

    fn boolean(&self, key: &str) -> Result<Option<bool>, ScenarioError> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v.as_bool().map(Some).ok_or(()).or_else(|()| {
                schema_err(
                    self.child(key),
                    format!("expected a boolean, got {}", v.type_name()),
                )
            }),
        }
    }

    fn array(&self, key: &str) -> Result<Option<&'a [JsonValue]>, ScenarioError> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v.as_array().map(Some).ok_or(()).or_else(|()| {
                schema_err(
                    self.child(key),
                    format!("expected an array, got {}", v.type_name()),
                )
            }),
        }
    }

    /// Rejects keys outside `allowed` — typos in optional fields would
    /// otherwise be silently ignored.
    fn deny_unknown(&self, allowed: &[&str]) -> Result<(), ScenarioError> {
        for (key, _) in self.value.as_object().expect("checked in new") {
            if !allowed.contains(&key.as_str()) {
                return schema_err(
                    self.child(key),
                    format!("unknown field (expected one of: {})", allowed.join(", ")),
                );
            }
        }
        Ok(())
    }
}

fn parse_node(nm: f64, path: &str) -> Result<ProcessNode, ScenarioError> {
    if nm.fract() != 0.0 || !(1.0..=1000.0).contains(&nm) {
        return schema_err(path, format!("expected a node size in nm, got {nm}"));
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    ProcessNode::from_nanometers(nm as u32).map_or_else(
        || {
            let known: Vec<String> = ProcessNode::ALL
                .into_iter()
                .map(|n| n.nanometers().to_string())
                .collect();
            schema_err(
                path,
                format!("unknown node {nm} nm (known: {})", known.join(", ")),
            )
        },
        Ok,
    )
}

/// The `design` block. The `technology` token stays raw until build
/// time — it resolves through the scenario's [`Registry`], so a
/// pack-defined technology name works here.
#[derive(Debug, Clone)]
enum DesignSpec {
    Preset(String),
    Explicit {
        technology: Option<String>,
        orientation: Option<StackOrientation>,
        flow: Option<StackingFlow>,
        dies: Vec<DieSpec>,
    },
}

/// The `workload` block.
#[derive(Debug, Clone)]
struct WorkloadSpec {
    preset: Option<String>,
    name: String,
    throughput: Throughput,
    active_hours: Option<f64>,
    bytes_per_op: Option<f64>,
    average_bytes_per_op: Option<f64>,
    average_utilization: Option<f64>,
    calendar_years: Option<f64>,
    trace: Option<TraceSpec>,
}

/// The `workload.trace` sub-block: a utilization (and optionally
/// grid-intensity) time series replacing the scalar duty cycle.
#[derive(Debug, Clone)]
struct TraceSpec {
    /// CSV path, resolved against the scenario file's directory when
    /// relative (see [`Scenario::with_base_dir`]).
    path: String,
}

/// The `context.power_model` sub-block: a registry power-model name
/// plus its numeric parameters.
#[derive(Debug, Clone)]
struct PowerSpec {
    name: String,
    params: Params,
}

/// The `context` block (all fields optional overrides). Region, yield,
/// and power tokens stay raw strings until build time, when they
/// resolve through the scenario's [`Registry`].
#[derive(Debug, Clone, Default)]
struct ContextSpec {
    fab_region: Option<String>,
    use_region: Option<String>,
    wafer_mm: Option<f64>,
    die_yield: Option<String>,
    power_model: Option<PowerSpec>,
    package: Option<PackageModel>,
    beol_adjustment: Option<bool>,
    bandwidth_constraint: Option<bool>,
    beol_carbon_fraction: Option<f64>,
    tsv_keepout: Option<f64>,
    m3d_sequential_fraction: Option<f64>,
}

/// The `sweep` block. `nodes_nm` entries are validated numerically at
/// parse time (node identities are a closed set); the `nodes` name
/// axis and the technology tokens resolve through the registry at
/// build time.
#[derive(Debug, Clone)]
struct SweepSpec {
    gate_count: f64,
    nodes: Option<Vec<ProcessNode>>,
    node_names: Option<Vec<String>>,
    technologies: Option<Vec<String>>,
    tiers: Option<Vec<u32>>,
    efficiency: Option<Efficiency>,
    workers: Option<usize>,
}

/// The `explore` block with its technology allowlist still raw: every
/// other field is validated at parse time, but allowlisted technology
/// names can come from packs, so they resolve at build time.
#[derive(Debug, Clone)]
struct ExploreRaw {
    /// The spec minus any `Constraint::Technologies` entry.
    spec: ExploreSpec,
    /// Raw `constraints.technologies` tokens, if given.
    technologies: Option<Vec<String>>,
}

/// Which evaluating command a scenario elaborates into (the `tdc
/// serve` protocol's `command` field, and `tdc batch`'s per-file
/// inference).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Single evaluation: lifecycle, or embodied-only without a
    /// workload.
    Run,
    /// Design-space sweep over the scenario's `sweep` block.
    Sweep,
    /// One-at-a-time sensitivity (tornado) analysis.
    Sensitivity,
    /// Carbon-aware exploration (Pareto frontier + Eq. 2 ranking)
    /// over the scenario's `sweep` plan, driven by the `explore`
    /// block.
    Explore,
}

impl RequestKind {
    /// Parses a protocol `command` token.
    #[must_use]
    pub fn from_token(token: &str) -> Option<Self> {
        Some(match token.trim().to_ascii_lowercase().as_str() {
            "run" => RequestKind::Run,
            "sweep" => RequestKind::Sweep,
            "sensitivity" => RequestKind::Sensitivity,
            "explore" => RequestKind::Explore,
            _ => return None,
        })
    }

    /// The stable command label (also used in stats lines).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RequestKind::Run => "run",
            RequestKind::Sweep => "sweep",
            RequestKind::Sensitivity => "sensitivity",
            RequestKind::Explore => "explore",
        }
    }
}

/// A parsed scenario file, ready to elaborate into model inputs.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (defaults to `"scenario"`).
    pub name: String,
    /// Free-text description, if given.
    pub description: Option<String>,
    packs: Vec<String>,
    design: Option<DesignSpec>,
    workload: Option<WorkloadSpec>,
    context: ContextSpec,
    sweep: Option<SweepSpec>,
    explore: Option<ExploreRaw>,
    base_dir: Option<PathBuf>,
    /// The registry every build-time name resolves through, built
    /// lazily (pack files load on first use, after `with_base_dir`).
    registry: OnceLock<Result<Arc<Registry>, ScenarioError>>,
}

impl Scenario {
    /// Parses a scenario document.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Json`] on malformed JSON and
    /// [`ScenarioError::Schema`] on schema violations (unknown fields,
    /// wrong types, unknown tokens).
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        let root = JsonValue::parse(text).map_err(ScenarioError::Json)?;
        Self::from_value(&root)
    }

    /// Elaborates an already-parsed JSON tree (the `tdc serve`
    /// protocol embeds scenario documents inside request frames).
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Schema`] on schema violations, exactly
    /// as [`parse`](Self::parse) would.
    pub fn from_value(root: &JsonValue) -> Result<Self, ScenarioError> {
        let fields = Fields::new(root, "")?;
        fields.deny_unknown(&[
            "name",
            "description",
            "packs",
            "design",
            "workload",
            "context",
            "sweep",
            "explore",
        ])?;
        let name = fields.string("name")?.unwrap_or("scenario").to_owned();
        let description = fields.string("description")?.map(str::to_owned);
        let packs = match fields.array("packs")? {
            None => Vec::new(),
            Some(items) => {
                let mut packs = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    let path = format!("packs[{i}]");
                    let file = item
                        .as_str()
                        .ok_or(())
                        .or_else(|()| schema_err::<&str>(&path, "expected a pack file path"))?;
                    if file.trim().is_empty() {
                        return schema_err(&path, "the path is empty");
                    }
                    packs.push(file.to_owned());
                }
                packs
            }
        };
        let design = match fields.get("design") {
            None => None,
            Some(v) => Some(Self::parse_design(v)?),
        };
        let workload = match fields.get("workload") {
            None => None,
            Some(v) => Some(Self::parse_workload(v)?),
        };
        let context = match fields.get("context") {
            None => ContextSpec::default(),
            Some(v) => Self::parse_context(v)?,
        };
        let sweep = match fields.get("sweep") {
            None => None,
            Some(v) => Some(Self::parse_sweep(v)?),
        };
        let explore = match fields.get("explore") {
            None => None,
            Some(v) => Some(Self::parse_explore(v)?),
        };
        Ok(Self {
            name,
            description,
            packs,
            design,
            workload,
            context,
            sweep,
            explore,
            base_dir: None,
            registry: OnceLock::new(),
        })
    }

    /// Anchors relative `workload.trace.path` and `packs` references
    /// to `dir` — the scenario *file*'s directory, so a scenario next
    /// to its data loads from anywhere. Embedded documents (`tdc
    /// serve` frames) have no file and stay cwd-relative.
    ///
    /// Call this before any `build_*` method: the first build loads
    /// the scenario's packs relative to the base directory and caches
    /// the resulting registry.
    #[must_use]
    pub fn with_base_dir(mut self, dir: Option<&Path>) -> Self {
        self.base_dir = dir.map(Path::to_path_buf);
        self
    }

    /// The model registry this scenario resolves names through: the
    /// built-in catalogs plus every file in the `packs` block (loaded
    /// on first use, scenario-file-relative).
    ///
    /// # Errors
    ///
    /// A pack that fails to load is a schema error whose path names
    /// the `packs[i]` entry; the underlying message carries the pack
    /// file path and, for parse failures, the line/column.
    pub fn registry(&self) -> Result<&Registry, ScenarioError> {
        self.registry
            .get_or_init(|| {
                let mut registry = Registry::with_builtins();
                for (i, file) in self.packs.iter().enumerate() {
                    let resolved = self.resolve_path(file);
                    registry
                        .load_pack(&resolved)
                        .map_err(|e| ScenarioError::Schema {
                            path: format!("packs[{i}]"),
                            message: e.to_string(),
                        })?;
                }
                Ok(Arc::new(registry))
            })
            .as_ref()
            .map(|arc| arc.as_ref())
            .map_err(Clone::clone)
    }

    fn parse_design(value: &JsonValue) -> Result<DesignSpec, ScenarioError> {
        let f = Fields::new(value, "design")?;
        if let Some(preset) = f.string("preset")? {
            f.deny_unknown(&["preset"])?;
            return Ok(DesignSpec::Preset(preset.to_owned()));
        }
        f.deny_unknown(&["integration", "orientation", "flow", "dies"])?;
        let technology = f.string("integration")?.map(str::to_owned);
        let orientation = match f.string("orientation")? {
            None => None,
            Some(token) => Some(match token.trim().to_ascii_lowercase().as_str() {
                "f2f" | "face-to-face" => StackOrientation::FaceToFace,
                "f2b" | "face-to-back" => StackOrientation::FaceToBack,
                other => {
                    return schema_err(
                        f.child("orientation"),
                        format!("expected `f2f` or `f2b`, got `{other}`"),
                    )
                }
            }),
        };
        let flow = match f.string("flow")? {
            None => None,
            Some(token) => Some(match token.trim().to_ascii_lowercase().as_str() {
                "d2w" | "die-to-wafer" => StackingFlow::DieToWafer,
                "w2w" | "wafer-to-wafer" => StackingFlow::WaferToWafer,
                other => {
                    return schema_err(
                        f.child("flow"),
                        format!("expected `d2w` or `w2w`, got `{other}`"),
                    )
                }
            }),
        };
        let Some(die_values) = f.array("dies")? else {
            return schema_err("design.dies", "an explicit design needs a die list");
        };
        if die_values.is_empty() {
            return schema_err("design.dies", "the die list is empty");
        }
        let mut dies = Vec::with_capacity(die_values.len());
        for (i, die_value) in die_values.iter().enumerate() {
            dies.push(Self::parse_die(die_value, i)?);
        }
        Ok(DesignSpec::Explicit {
            technology,
            orientation,
            flow,
            dies,
        })
    }

    fn parse_die(value: &JsonValue, index: usize) -> Result<DieSpec, ScenarioError> {
        let path = format!("design.dies[{index}]");
        let f = Fields::new(value, path.clone())?;
        f.deny_unknown(&[
            "name",
            "node_nm",
            "gate_count",
            "area_mm2",
            "beol_layers",
            "efficiency_tops_per_watt",
            "compute_share",
        ])?;
        let name = f
            .string("name")?
            .map_or_else(|| format!("die{index}"), str::to_owned);
        let node = parse_node(f.required_number("node_nm")?, &f.child("node_nm"))?;
        let mut b = DieSpec::builder(name, node);
        if let Some(g) = f.number("gate_count")? {
            b = b.gate_count(g);
        }
        if let Some(a) = f.number("area_mm2")? {
            b = b.area(Area::from_mm2(a));
        }
        if let Some(l) = f.number("beol_layers")? {
            if l.fract() != 0.0 || !(0.0..=f64::from(u32::MAX)).contains(&l) {
                return schema_err(
                    f.child("beol_layers"),
                    format!("expected a whole layer count, got {l}"),
                );
            }
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            {
                b = b.beol_layers(l as u32);
            }
        }
        if let Some(e) = f.number("efficiency_tops_per_watt")? {
            b = b.efficiency(Efficiency::from_tops_per_watt(e));
        }
        if let Some(s) = f.number("compute_share")? {
            b = b.compute_share(s);
        }
        Ok(b.build()?)
    }

    fn parse_workload(value: &JsonValue) -> Result<WorkloadSpec, ScenarioError> {
        let f = Fields::new(value, "workload")?;
        f.deny_unknown(&[
            "preset",
            "name",
            "throughput_tops",
            "active_hours",
            "bytes_per_op",
            "average_bytes_per_op",
            "average_utilization",
            "calendar_years",
            "trace",
        ])?;
        let preset = f.string("preset")?.map(str::to_owned);
        let tops = f.required_number("throughput_tops")?;
        if !(tops.is_finite() && tops > 0.0) {
            return schema_err(
                "workload.throughput_tops",
                format!("must be positive, got {tops}"),
            );
        }
        let throughput = Throughput::from_tops(tops);
        let active_hours = f.number("active_hours")?;
        if preset.is_none() && active_hours.is_none() {
            return schema_err(
                "workload.active_hours",
                "required unless a workload preset is used",
            );
        }
        // A preset fixes the duty cycle; silently discarding a
        // user-written active time or name would defeat the
        // reject-don't-ignore design of this schema. (The remaining
        // optional fields *override* the preset's values.)
        if preset.is_some() {
            for fixed in ["active_hours", "name"] {
                if f.get(fixed).is_some() {
                    return schema_err(
                        f.child(fixed),
                        "a workload preset fixes this; drop `preset` to set it explicitly",
                    );
                }
            }
        }
        let trace = match f.get("trace") {
            None => None,
            Some(v) => {
                let t = Fields::new(v, f.child("trace"))?;
                t.deny_unknown(&["path"])?;
                let Some(path) = t.string("path")? else {
                    return schema_err("workload.trace.path", "required field is missing");
                };
                if path.trim().is_empty() {
                    return schema_err("workload.trace.path", "the path is empty");
                }
                Some(TraceSpec {
                    path: path.to_owned(),
                })
            }
        };
        // A trace *is* the utilization profile; also writing the
        // scalar would leave one of them silently ignored.
        if trace.is_some() && f.get("average_utilization").is_some() {
            return schema_err(
                "workload.average_utilization",
                "a trace defines the utilization profile; drop `trace` to set it as a scalar",
            );
        }
        Ok(WorkloadSpec {
            preset,
            name: f.string("name")?.unwrap_or("mission").to_owned(),
            throughput,
            active_hours,
            bytes_per_op: f.number("bytes_per_op")?,
            average_bytes_per_op: f.number("average_bytes_per_op")?,
            average_utilization: f.number("average_utilization")?,
            calendar_years: f.number("calendar_years")?,
            trace,
        })
    }

    fn parse_context(value: &JsonValue) -> Result<ContextSpec, ScenarioError> {
        let f = Fields::new(value, "context")?;
        f.deny_unknown(&[
            "fab_region",
            "use_region",
            "wafer_mm",
            "die_yield",
            "power_model",
            "package",
            "beol_adjustment",
            "bandwidth_constraint",
            "beol_carbon_fraction",
            "tsv_keepout",
            "m3d_sequential_fraction",
        ])?;
        let power_model = match f.get("power_model") {
            None => None,
            Some(v) => Some(Self::parse_power(v, &f.child("power_model"))?),
        };
        let package = match f.string("package")? {
            None => None,
            Some(token) => Some(match token.trim().to_ascii_lowercase().as_str() {
                "server" => PackageModel::server(),
                "mobile" => PackageModel::mobile(),
                other => {
                    return schema_err(
                        f.child("package"),
                        format!("expected `server` or `mobile`, got `{other}`"),
                    )
                }
            }),
        };
        // The builder would clamp out-of-range knobs; a scenario file
        // rejects them instead — results must match what was written.
        let bounded = |key: &str, lo: f64, hi: f64| -> Result<Option<f64>, ScenarioError> {
            match f.number(key)? {
                None => Ok(None),
                Some(v) if (lo..=hi).contains(&v) => Ok(Some(v)),
                Some(v) => schema_err(f.child(key), format!("must be in [{lo}, {hi}], got {v}")),
            }
        };
        Ok(ContextSpec {
            fab_region: f.string("fab_region")?.map(str::to_owned),
            use_region: f.string("use_region")?.map(str::to_owned),
            wafer_mm: f.number("wafer_mm")?,
            die_yield: f.string("die_yield")?.map(str::to_owned),
            power_model,
            package,
            beol_adjustment: f.boolean("beol_adjustment")?,
            bandwidth_constraint: f.boolean("bandwidth_constraint")?,
            beol_carbon_fraction: bounded("beol_carbon_fraction", 0.0, 1.0)?,
            tsv_keepout: bounded("tsv_keepout", 1.0, 100.0)?,
            m3d_sequential_fraction: bounded("m3d_sequential_fraction", 0.0, 1.0)?,
        })
    }

    /// `context.power_model`: either a bare model name or an object
    /// `{"model": name, ...}` whose remaining fields are the model's
    /// numeric parameters (booleans travel as `0`/`1`).
    fn parse_power(value: &JsonValue, path: &str) -> Result<PowerSpec, ScenarioError> {
        if let Some(name) = value.as_str() {
            return Ok(PowerSpec {
                name: name.to_owned(),
                params: Params::new(),
            });
        }
        let Some(entries) = value.as_object() else {
            return schema_err(
                path,
                format!(
                    "expected a model name or an object with a `model` field, got {}",
                    value.type_name()
                ),
            );
        };
        let mut name = None;
        let mut params = Params::new();
        for (key, v) in entries {
            if key == "model" {
                let Some(n) = v.as_str() else {
                    return schema_err(
                        format!("{path}.model"),
                        format!("expected a string, got {}", v.type_name()),
                    );
                };
                name = Some(n.to_owned());
            } else if let Some(n) = v.as_f64() {
                params.set(key, n);
            } else if let Some(b) = v.as_bool() {
                params.set(key, if b { 1.0 } else { 0.0 });
            } else {
                return schema_err(
                    format!("{path}.{key}"),
                    format!("expected a number or boolean, got {}", v.type_name()),
                );
            }
        }
        name.map_or_else(
            || schema_err(format!("{path}.model"), "required field is missing"),
            |name| Ok(PowerSpec { name, params }),
        )
    }

    fn parse_sweep(value: &JsonValue) -> Result<SweepSpec, ScenarioError> {
        let f = Fields::new(value, "sweep")?;
        f.deny_unknown(&[
            "gate_count",
            "nodes",
            "nodes_nm",
            "technologies",
            "tiers",
            "tier_counts",
            "efficiency_tops_per_watt",
            "workers",
        ])?;
        let gate_count = f.required_number("gate_count")?;
        if !(gate_count.is_finite() && gate_count > 0.0) {
            return schema_err(
                "sweep.gate_count",
                format!("must be positive, got {gate_count}"),
            );
        }
        let nodes = match f.array("nodes_nm")? {
            None => None,
            Some(items) => {
                let mut nodes = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    let path = format!("sweep.nodes_nm[{i}]");
                    let nm = item
                        .as_f64()
                        .ok_or(())
                        .or_else(|()| schema_err::<f64>(&path, "expected a number"))?;
                    nodes.push(parse_node(nm, &path)?);
                }
                Some(nodes)
            }
        };
        // The node axis answers to a numeric form (`nodes_nm`) and a
        // registry-name form (`nodes`, e.g. `["n7", "n5"]`); writing
        // both would be ambiguous, so it is rejected rather than
        // ignored.
        if f.get("nodes").is_some() && f.get("nodes_nm").is_some() {
            return schema_err(
                "sweep.nodes",
                "duplicates `sweep.nodes_nm`; write the node axis once",
            );
        }
        let node_names = match f.array("nodes")? {
            None => None,
            Some(items) => {
                let mut names = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    let path = format!("sweep.nodes[{i}]");
                    let token = item
                        .as_str()
                        .ok_or(())
                        .or_else(|()| schema_err::<&str>(&path, "expected a node name"))?;
                    names.push(token.to_owned());
                }
                Some(names)
            }
        };
        let technologies = match f.array("technologies")? {
            None => None,
            Some(items) => {
                let mut techs = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    let path = format!("sweep.technologies[{i}]");
                    let token = item
                        .as_str()
                        .ok_or(())
                        .or_else(|()| schema_err::<&str>(&path, "expected a string"))?;
                    techs.push(token.to_owned());
                }
                Some(techs)
            }
        };
        // The tier-count axis answers to both its `DesignSweep` name
        // (`tier_counts`) and the shorthand `tiers`; writing both would
        // be ambiguous, so it is rejected rather than ignored.
        if f.get("tiers").is_some() && f.get("tier_counts").is_some() {
            return schema_err(
                "sweep.tier_counts",
                "duplicates `sweep.tiers`; write the tier-count axis once",
            );
        }
        let tier_key = if f.get("tier_counts").is_some() {
            "tier_counts"
        } else {
            "tiers"
        };
        let tiers = match f.array(tier_key)? {
            None => None,
            Some(items) => {
                let mut tiers = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    let path = format!("sweep.{tier_key}[{i}]");
                    let t = item
                        .as_f64()
                        .ok_or(())
                        .or_else(|()| schema_err::<f64>(&path, "expected a number"))?;
                    if t.fract() != 0.0 || !(2.0..=64.0).contains(&t) {
                        return schema_err(
                            &path,
                            format!("expected a tier count in 2..=64, got {t}"),
                        );
                    }
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    tiers.push(t as u32);
                }
                if tiers.is_empty() {
                    return schema_err(f.child(tier_key), "the tier list is empty");
                }
                Some(tiers)
            }
        };
        let workers = match f.number("workers")? {
            None => None,
            Some(w) => {
                if w.fract() != 0.0 || !(0.0..=1024.0).contains(&w) {
                    return schema_err(
                        "sweep.workers",
                        format!("expected a count in 0..=1024, got {w}"),
                    );
                }
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                Some(w as usize)
            }
        };
        Ok(SweepSpec {
            gate_count,
            nodes,
            node_names,
            technologies,
            tiers,
            efficiency: f
                .number("efficiency_tops_per_watt")?
                .map(Efficiency::from_tops_per_watt),
            workers,
        })
    }

    fn parse_explore(value: &JsonValue) -> Result<ExploreRaw, ScenarioError> {
        let f = Fields::new(value, "explore")?;
        f.deny_unknown(&["objectives", "constraints", "baseline", "refine"])?;
        let Some(objective_values) = f.array("objectives")? else {
            return schema_err("explore.objectives", "required field is missing");
        };
        let mut objectives = Vec::with_capacity(objective_values.len());
        for (i, item) in objective_values.iter().enumerate() {
            let path = format!("explore.objectives[{i}]");
            let token = item
                .as_str()
                .ok_or(())
                .or_else(|()| schema_err::<&str>(&path, "expected a string"))?;
            let objective = Objective::from_token(token).map_or_else(
                || {
                    let known: Vec<&str> =
                        Objective::ALL.into_iter().map(Objective::label).collect();
                    schema_err(
                        &path,
                        format!("unknown objective `{token}` (known: {})", known.join(", ")),
                    )
                },
                Ok,
            )?;
            objectives.push(objective);
        }
        let (constraints, technologies) = match f.get("constraints") {
            None => (Vec::new(), None),
            Some(v) => Self::parse_constraints(v)?,
        };
        let baseline = f.string("baseline")?.map(str::to_owned);
        let refine = match f.get("refine") {
            None => None,
            Some(v) => Some(Self::parse_refine(v)?),
        };
        let spec = ExploreSpec {
            objectives,
            constraints,
            baseline,
            refine,
        };
        // Core validation (objective count, duplicates, refine ranges)
        // is surfaced as a schema error on the block, so every `tdc`
        // surface reports the same path-named message. It does not
        // depend on the technology allowlist, which resolves later.
        spec.validate().map_or_else(
            |m| schema_err("explore", m),
            |()| Ok(ExploreRaw { spec, technologies }),
        )
    }

    /// Parses `explore.constraints`, returning the resolved
    /// constraints plus the raw technology-allowlist tokens (those
    /// need the registry, which is only available at build time).
    #[allow(clippy::type_complexity)]
    fn parse_constraints(
        value: &JsonValue,
    ) -> Result<(Vec<Constraint>, Option<Vec<String>>), ScenarioError> {
        let f = Fields::new(value, "explore.constraints")?;
        f.deny_unknown(&[
            "max_package_area_mm2",
            "max_embodied_kg",
            "require_viable",
            "nodes_nm",
            "technologies",
        ])?;
        let mut constraints = Vec::new();
        let positive = |key: &str| -> Result<Option<f64>, ScenarioError> {
            match f.number(key)? {
                None => Ok(None),
                Some(v) if v.is_finite() && v > 0.0 => Ok(Some(v)),
                Some(v) => schema_err(f.child(key), format!("must be positive, got {v}")),
            }
        };
        if let Some(mm2) = positive("max_package_area_mm2")? {
            constraints.push(Constraint::MaxPackageArea { mm2 });
        }
        if let Some(kg) = positive("max_embodied_kg")? {
            constraints.push(Constraint::MaxEmbodied { kg });
        }
        if f.boolean("require_viable")?.unwrap_or(false) {
            constraints.push(Constraint::RequireViable);
        }
        if let Some(items) = f.array("nodes_nm")? {
            let mut nodes = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let path = format!("explore.constraints.nodes_nm[{i}]");
                let nm = item
                    .as_f64()
                    .ok_or(())
                    .or_else(|()| schema_err::<f64>(&path, "expected a number"))?;
                nodes.push(parse_node(nm, &path)?);
            }
            if nodes.is_empty() {
                return schema_err("explore.constraints.nodes_nm", "the allowlist is empty");
            }
            constraints.push(Constraint::Nodes(nodes));
        }
        let technologies = match f.array("technologies")? {
            None => None,
            Some(items) => {
                let mut techs = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    let path = format!("explore.constraints.technologies[{i}]");
                    let token = item
                        .as_str()
                        .ok_or(())
                        .or_else(|()| schema_err::<&str>(&path, "expected a string"))?;
                    techs.push(token.to_owned());
                }
                if techs.is_empty() {
                    return schema_err(
                        "explore.constraints.technologies",
                        "the allowlist is empty",
                    );
                }
                Some(techs)
            }
        };
        Ok((constraints, technologies))
    }

    fn parse_refine(value: &JsonValue) -> Result<RefineSpec, ScenarioError> {
        let f = Fields::new(value, "explore.refine")?;
        f.deny_unknown(&["axis", "min", "max", "samples", "budget", "tolerance"])?;
        let Some(token) = f.string("axis")? else {
            return schema_err("explore.refine.axis", "required field is missing");
        };
        let axis = RefineAxis::from_token(token).map_or_else(
            || {
                let known: Vec<&str> = RefineAxis::ALL.into_iter().map(RefineAxis::label).collect();
                schema_err(
                    "explore.refine.axis",
                    format!("unknown axis `{token}` (known: {})", known.join(", ")),
                )
            },
            Ok,
        )?;
        let min = f.required_number("min")?;
        let max = f.required_number("max")?;
        let mut spec = RefineSpec::new(axis, min, max);
        let whole = |key: &str, hi: f64| -> Result<Option<usize>, ScenarioError> {
            match f.number(key)? {
                None => Ok(None),
                Some(v) if v.fract() == 0.0 && (0.0..=hi).contains(&v) =>
                {
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    Ok(Some(v as usize))
                }
                Some(v) => schema_err(
                    f.child(key),
                    format!("expected a whole count in 0..={hi}, got {v}"),
                ),
            }
        };
        if let Some(samples) = whole("samples", 65.0)? {
            spec.samples = samples;
        }
        if let Some(budget) = whole("budget", 1024.0)? {
            spec.budget = budget;
        }
        if let Some(tolerance) = f.number("tolerance")? {
            spec.tolerance = tolerance;
        }
        // The range/sampling/tolerance validation lives in core; name
        // the block so the error is path-addressed like the rest.
        spec.validate()
            .map_or_else(|m| schema_err("explore.refine", m), |()| Ok(spec))
    }

    /// The evaluating command `tdc batch` infers for this file: a
    /// scenario with an `explore` block explores, one with only a
    /// `sweep` block sweeps, anything else runs — exactly the command
    /// a user would invoke on the file alone.
    #[must_use]
    pub fn infer_request_kind(&self) -> RequestKind {
        if self.has_explore() {
            RequestKind::Explore
        } else if self.has_sweep() {
            RequestKind::Sweep
        } else {
            RequestKind::Run
        }
    }

    /// Elaborates the scenario into a typed service request for
    /// `kind`, reusing the same `build_*` paths the single-shot
    /// commands call — which is what makes a
    /// [`ScenarioSession`](tdc_core::service::ScenarioSession) answer
    /// byte-identically to those commands.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `build_*` errors; a missing
    /// `workload` block for `sweep`/`sensitivity` is a schema error
    /// whose path names the block.
    pub fn build_request(&self, kind: RequestKind) -> Result<EvalRequest, ScenarioError> {
        let context = self.build_context()?;
        let required_workload = |command: &str| -> Result<Workload, ScenarioError> {
            self.build_workload()?.map_or_else(
                || {
                    schema_err(
                        "workload",
                        format!("a `{command}` request needs a workload block"),
                    )
                },
                Ok,
            )
        };
        match kind {
            RequestKind::Run => Ok(EvalRequest::Run {
                context,
                design: self.build_design()?,
                workload: self.build_workload()?,
            }),
            RequestKind::Sweep => Ok(EvalRequest::Sweep {
                context,
                plan: self.build_sweep()?.plan()?,
                workload: required_workload("sweep")?,
            }),
            RequestKind::Sensitivity => Ok(EvalRequest::Sensitivity {
                context,
                design: self.build_design()?,
                workload: required_workload("sensitivity")?,
            }),
            RequestKind::Explore => Ok(EvalRequest::Explore {
                context,
                plan: self.build_sweep()?.plan()?,
                workload: required_workload("explore")?,
                spec: self.build_explore()?,
            }),
        }
    }

    /// Whether a `design` block is present.
    #[must_use]
    pub fn has_design(&self) -> bool {
        self.design.is_some()
    }

    /// Whether a `workload` block is present.
    #[must_use]
    pub fn has_workload(&self) -> bool {
        self.workload.is_some()
    }

    /// Whether a `sweep` block is present.
    #[must_use]
    pub fn has_sweep(&self) -> bool {
        self.sweep.is_some()
    }

    /// Whether an `explore` block is present.
    #[must_use]
    pub fn has_explore(&self) -> bool {
        self.explore.is_some()
    }

    /// Elaborates the `explore` block into an [`ExploreSpec`],
    /// resolving any technology allowlist through the registry.
    ///
    /// # Errors
    ///
    /// Fails when the block is missing or an allowlisted technology
    /// name does not resolve.
    pub fn build_explore(&self) -> Result<ExploreSpec, ScenarioError> {
        let Some(raw) = &self.explore else {
            return schema_err("explore", "this command needs an explore block");
        };
        let mut spec = raw.spec.clone();
        if let Some(tokens) = &raw.technologies {
            let registry = self.registry()?;
            let mut techs = Vec::with_capacity(tokens.len());
            for (i, token) in tokens.iter().enumerate() {
                let path = format!("explore.constraints.technologies[{i}]");
                let model = registry
                    .resolve_technology(token)
                    .map_err(|e| registry_err(path, e))?;
                techs.push(model.technology);
            }
            spec.constraints.push(Constraint::Technologies(techs));
        }
        Ok(spec)
    }

    /// Worker-thread request of the `sweep` block, if any.
    #[must_use]
    pub fn sweep_workers(&self) -> Option<usize> {
        self.sweep.as_ref().and_then(|s| s.workers)
    }

    /// Elaborates the `design` block into a [`ChipDesign`]. Preset
    /// names and integration-technology tokens resolve through the
    /// scenario's registry.
    ///
    /// # Errors
    ///
    /// Fails when the block is missing, names an unknown preset or
    /// technology, or describes a design the model rejects.
    pub fn build_design(&self) -> Result<ChipDesign, ScenarioError> {
        let Some(spec) = &self.design else {
            return schema_err("design", "this command needs a design block");
        };
        match spec {
            DesignSpec::Preset(name) => self
                .registry()?
                .create_design(name)
                .map_err(|e| registry_err("design.preset", e)),
            DesignSpec::Explicit {
                technology,
                orientation,
                flow,
                dies,
            } => {
                let technology = match technology {
                    None => None,
                    Some(token) => {
                        self.registry()?
                            .resolve_technology(token)
                            .map_err(|e| registry_err("design.integration", e))?
                            .technology
                    }
                };
                Self::build_explicit(technology, *orientation, *flow, dies)
            }
        }
    }

    fn build_explicit(
        technology: Option<IntegrationTechnology>,
        orientation: Option<StackOrientation>,
        flow: Option<StackingFlow>,
        dies: &[DieSpec],
    ) -> Result<ChipDesign, ScenarioError> {
        // Orientation/flow only mean something for a 3D stack —
        // accepting them elsewhere would silently ignore what the
        // user wrote.
        let reject_stack_fields = |kind: &str| -> Result<(), ScenarioError> {
            if orientation.is_some() {
                return schema_err(
                    "design.orientation",
                    format!("only 3D stacks have an orientation ({kind} design)"),
                );
            }
            if flow.is_some() {
                return schema_err(
                    "design.flow",
                    format!("only 3D stacks have a bonding flow ({kind} design)"),
                );
            }
            Ok(())
        };
        let Some(tech) = technology else {
            reject_stack_fields("2D")?;
            if dies.len() != 1 {
                return schema_err(
                    "design.dies",
                    format!("a 2D design has exactly one die, got {}", dies.len()),
                );
            }
            return Ok(ChipDesign::monolithic_2d(dies[0].clone()));
        };
        match tech.family() {
            IntegrationFamily::ThreeD => {
                let orientation = orientation.unwrap_or(
                    if tech == IntegrationTechnology::Monolithic3d || dies.len() > 2 {
                        StackOrientation::FaceToBack
                    } else {
                        StackOrientation::FaceToFace
                    },
                );
                let flow = if tech == IntegrationTechnology::Monolithic3d {
                    flow // M3D takes no flow; an explicit one errors below.
                } else {
                    flow.or(Some(StackingFlow::DieToWafer))
                };
                Ok(ChipDesign::stack_3d(
                    dies.to_vec(),
                    tech,
                    orientation,
                    flow,
                )?)
            }
            IntegrationFamily::TwoPointFiveD => {
                reject_stack_fields("2.5D")?;
                Ok(ChipDesign::assembly_25d(dies.to_vec(), tech)?)
            }
        }
    }

    /// Elaborates the `workload` block, when present.
    ///
    /// # Errors
    ///
    /// Fails on unknown presets or out-of-domain values.
    pub fn build_workload(&self) -> Result<Option<Workload>, ScenarioError> {
        let Some(spec) = &self.workload else {
            return Ok(None);
        };
        // Base profile: the preset's duty cycle, or an explicit
        // fixed-throughput mission. The optional fields below override
        // the base in both cases.
        let mut w = if let Some(preset) = &spec.preset {
            let params = Params::new().with("throughput_tops", spec.throughput.tops());
            self.registry()?
                .create_workload(preset, &params)
                .map_err(|e| registry_err("workload.preset", e))?
        } else {
            let hours = spec.active_hours.expect("checked at parse time");
            if !(hours.is_finite() && hours > 0.0) {
                return schema_err(
                    "workload.active_hours",
                    format!("must be positive, got {hours}"),
                );
            }
            Workload::fixed(
                spec.name.clone(),
                spec.throughput,
                TimeSpan::from_hours(hours),
            )
        };
        if let Some(b) = spec.bytes_per_op {
            if !(b.is_finite() && b >= 0.0) {
                return schema_err(
                    "workload.bytes_per_op",
                    format!("must be non-negative, got {b}"),
                );
            }
            w = w.with_bytes_per_op(b);
        }
        if let Some(b) = spec.average_bytes_per_op {
            if !(b.is_finite() && b >= 0.0) {
                return schema_err(
                    "workload.average_bytes_per_op",
                    format!("must be non-negative, got {b}"),
                );
            }
            w = w.with_average_bytes_per_op(b);
        }
        if let Some(u) = spec.average_utilization {
            if !(u > 0.0 && u <= 1.0) {
                return schema_err(
                    "workload.average_utilization",
                    format!("must be in (0, 1], got {u}"),
                );
            }
            w = w.with_average_utilization(u);
        }
        if let Some(y) = spec.calendar_years {
            if !(y.is_finite() && y > 0.0) {
                return schema_err(
                    "workload.calendar_years",
                    format!("must be positive, got {y}"),
                );
            }
            w = w.with_calendar_lifetime(TimeSpan::from_years(y));
        }
        if let Some(trace) = &spec.trace {
            let resolved = self.resolve_path(&trace.path);
            let profile =
                TraceReader::new()
                    .ingest_path(&resolved)
                    .map_err(|e| ScenarioError::Schema {
                        path: "workload.trace.path".to_owned(),
                        message: format!("{}: {e}", resolved.display()),
                    })?;
            w = w.with_trace(Arc::new(profile));
        }
        Ok(Some(w))
    }

    /// Resolves a scenario-written path against the scenario file's
    /// directory (when known and the path is relative).
    fn resolve_path(&self, path: &str) -> PathBuf {
        let p = Path::new(path);
        match &self.base_dir {
            Some(dir) if p.is_relative() => dir.join(p),
            _ => p.to_path_buf(),
        }
    }

    /// Elaborates the model context: the design preset's default
    /// context (e.g. Lakefield's mobile package), with the `context`
    /// block's overrides applied on top — grid regions, the yield
    /// model, and the power model resolved through the registry — and
    /// finally any loaded pack's catalog rewrites.
    ///
    /// # Errors
    ///
    /// Fails on out-of-domain values (e.g. a non-positive wafer
    /// diameter) and on names the registry does not know.
    pub fn build_context(&self) -> Result<ModelContext, ScenarioError> {
        let registry = self.registry()?;
        let base = match &self.design {
            Some(DesignSpec::Preset(name)) => design_preset_context(name),
            _ => ModelContext::default(),
        };
        let c = &self.context;
        let mut b = base.to_builder();
        if let Some(token) = &c.fab_region {
            let r = registry
                .resolve_grid(token)
                .map_err(|e| registry_err("context.fab_region", e))?;
            b = b.fab_region(r);
        }
        if let Some(token) = &c.use_region {
            let r = registry
                .resolve_grid(token)
                .map_err(|e| registry_err("context.use_region", e))?;
            b = b.use_region(r);
        }
        if let Some(mm) = c.wafer_mm {
            if !(mm.is_finite() && mm > 0.0) {
                return schema_err("context.wafer_mm", format!("must be positive, got {mm}"));
            }
            b = b.wafer(Wafer::with_diameter(Length::from_mm(mm)));
        }
        if let Some(token) = &c.die_yield {
            let y = registry
                .resolve_yield(token)
                .map_err(|e| registry_err("context.die_yield", e))?;
            b = b.die_yield(y);
        }
        if let Some(power) = &c.power_model {
            let choice = registry
                .create_power(&power.name, &power.params)
                .map_err(|e| registry_err("context.power_model", e))?;
            b = b.power_model(choice);
        }
        if let Some(p) = c.package {
            b = b.package(p);
        }
        if let Some(on) = c.beol_adjustment {
            b = b.beol_adjustment(on);
        }
        if let Some(on) = c.bandwidth_constraint {
            b = b.bandwidth_constraint(on);
        }
        if let Some(v) = c.beol_carbon_fraction {
            b = b.beol_carbon_fraction(v);
        }
        if let Some(v) = c.tsv_keepout {
            b = b.tsv_keepout(v);
        }
        if let Some(v) = c.m3d_sequential_fraction {
            b = b.m3d_sequential_fraction(v);
        }
        Ok(registry.apply_packs(&b.build()))
    }

    /// Elaborates the `sweep` block into a [`DesignSweep`], resolving
    /// the `nodes` name axis and technology tokens through the
    /// registry.
    ///
    /// # Errors
    ///
    /// Fails when the block is missing or an axis entry does not
    /// resolve.
    pub fn build_sweep(&self) -> Result<DesignSweep, ScenarioError> {
        let Some(spec) = &self.sweep else {
            return schema_err("sweep", "this command needs a sweep block");
        };
        let mut sweep = DesignSweep::new(spec.gate_count);
        if let Some(nodes) = &spec.nodes {
            sweep = sweep.nodes(nodes.clone());
        }
        if let Some(names) = &spec.node_names {
            let registry = self.registry()?;
            let mut nodes = Vec::with_capacity(names.len());
            for (i, name) in names.iter().enumerate() {
                let params = registry
                    .resolve_node(name)
                    .map_err(|e| registry_err(format!("sweep.nodes[{i}]"), e))?;
                nodes.push(params.node());
            }
            sweep = sweep.nodes(nodes);
        }
        if let Some(tokens) = &spec.technologies {
            let registry = self.registry()?;
            let mut techs = Vec::with_capacity(tokens.len());
            for (i, token) in tokens.iter().enumerate() {
                let model = registry
                    .resolve_technology(token)
                    .map_err(|e| registry_err(format!("sweep.technologies[{i}]"), e))?;
                techs.push(model.technology);
            }
            sweep = sweep.technologies(techs);
        }
        if let Some(tiers) = &spec.tiers {
            sweep = sweep.tier_counts(tiers.clone());
        }
        if let Some(eff) = spec.efficiency {
            sweep = sweep.efficiency(eff);
        }
        Ok(sweep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdc_core::DieYieldChoice;
    use tdc_technode::GridRegion;

    #[test]
    fn minimal_preset_scenario_parses() {
        let s = Scenario::parse(r#"{"design": {"preset": "epyc-7452"}}"#).unwrap();
        assert_eq!(s.name, "scenario");
        assert!(s.has_design());
        assert!(!s.has_workload());
        let d = s.build_design().unwrap();
        assert_eq!(d.dies().len(), 5);
        assert!(s.build_workload().unwrap().is_none());
    }

    #[test]
    fn explicit_design_elaborates() {
        let s = Scenario::parse(
            r#"{
              "design": {
                "integration": "hybrid-3d",
                "dies": [
                  {"name": "t0", "node_nm": 7, "gate_count": 8.5e9},
                  {"name": "t1", "node_nm": 7, "gate_count": 8.5e9}
                ]
              }
            }"#,
        )
        .unwrap();
        let d = s.build_design().unwrap();
        assert_eq!(d.technology(), Some(IntegrationTechnology::HybridBonding3d));
        match d {
            ChipDesign::Stack3d {
                orientation, flow, ..
            } => {
                assert_eq!(orientation, StackOrientation::FaceToFace);
                assert_eq!(flow, Some(StackingFlow::DieToWafer));
            }
            other => panic!("expected a stack, got {other:?}"),
        }
    }

    #[test]
    fn workload_and_context_elaborate() {
        let s = Scenario::parse(
            r#"{
              "workload": {
                "throughput_tops": 254,
                "active_hours": 10000,
                "average_utilization": 0.4,
                "calendar_years": 10
              },
              "context": {"fab_region": "renewable", "use_region": "france", "die_yield": "poisson"}
            }"#,
        )
        .unwrap();
        let w = s.build_workload().unwrap().unwrap();
        assert!((w.peak_throughput().tops() - 254.0).abs() < 1e-12);
        assert!((w.average_utilization() - 0.4).abs() < 1e-12);
        let ctx = s.build_context().unwrap();
        assert_eq!(ctx.fab_region(), GridRegion::Renewable);
        assert_eq!(ctx.use_region(), GridRegion::France);
        assert_eq!(ctx.die_yield(), DieYieldChoice::Poisson);
    }

    #[test]
    fn workload_preset_resolves() {
        let s =
            Scenario::parse(r#"{"workload": {"preset": "av-robotaxi", "throughput_tops": 254}}"#)
                .unwrap();
        let w = s.build_workload().unwrap().unwrap();
        assert!(w.calendar_lifetime().is_some());
    }

    #[test]
    fn workload_preset_accepts_overrides_but_not_fixed_fields() {
        // Optional fields override the preset's values...
        let s = Scenario::parse(
            r#"{"workload": {"preset": "av-robotaxi", "throughput_tops": 254,
                 "average_utilization": 0.9, "calendar_years": 3}}"#,
        )
        .unwrap();
        let w = s.build_workload().unwrap().unwrap();
        assert!((w.average_utilization() - 0.9).abs() < 1e-12);
        assert!((w.calendar_lifetime().unwrap().years() - 3.0).abs() < 1e-12);
        // ...but fields the preset computes are rejected, not ignored.
        let err = Scenario::parse(
            r#"{"workload": {"preset": "av-robotaxi", "throughput_tops": 254, "active_hours": 1}}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("workload.active_hours"), "{err}");
    }

    #[test]
    fn out_of_range_context_knobs_are_rejected_not_clamped() {
        for (field, value) in [
            ("beol_carbon_fraction", "4.5"),
            ("tsv_keepout", "0.5"),
            ("m3d_sequential_fraction", "-0.1"),
        ] {
            let err =
                Scenario::parse(&format!(r#"{{"context": {{"{field}": {value}}}}}"#)).unwrap_err();
            assert!(err.to_string().contains(field), "{err}");
        }
        // In-range values pass through unclamped.
        let s = Scenario::parse(r#"{"context": {"beol_carbon_fraction": 0.3}}"#).unwrap();
        let ctx = s.build_context().unwrap();
        assert!((ctx.beol_carbon_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn non_positive_throughput_is_rejected() {
        for tops in ["-254", "0"] {
            let err = Scenario::parse(&format!(
                r#"{{"workload": {{"throughput_tops": {tops}, "active_hours": 10}}}}"#
            ))
            .unwrap_err();
            assert!(err.to_string().contains("throughput_tops"), "{err}");
        }
    }

    #[test]
    fn stack_fields_on_non_3d_designs_are_rejected() {
        let dies_25d = r#"[{"node_nm": 7, "gate_count": 1e9}, {"node_nm": 7, "gate_count": 1e9}]"#;
        let s = Scenario::parse(&format!(
            r#"{{"design": {{"integration": "emib", "flow": "w2w", "dies": {dies_25d}}}}}"#
        ))
        .unwrap();
        let err = s.build_design().unwrap_err();
        assert!(err.to_string().contains("design.flow"), "{err}");
        let s = Scenario::parse(&format!(
            r#"{{"design": {{"integration": "emib", "orientation": "f2f", "dies": {dies_25d}}}}}"#
        ))
        .unwrap();
        let err = s.build_design().unwrap_err();
        assert!(err.to_string().contains("design.orientation"), "{err}");
        let s = Scenario::parse(
            r#"{"design": {"orientation": "f2f", "dies": [{"node_nm": 7, "gate_count": 1e9}]}}"#,
        )
        .unwrap();
        assert!(s.build_design().is_err());
    }

    #[test]
    fn sweep_block_elaborates() {
        let s = Scenario::parse(
            r#"{
              "sweep": {
                "gate_count": 17e9,
                "nodes_nm": [7, 5],
                "technologies": ["2d", "hybrid", "emib"],
                "tiers": [2, 4],
                "workers": 8
              }
            }"#,
        )
        .unwrap();
        assert_eq!(s.sweep_workers(), Some(8));
        let plan = s.build_sweep().unwrap().plan().unwrap();
        // Per node: 1×2D + hybrid@{2,4} + emib@{2,4} = 5 points.
        assert_eq!(plan.len(), 10);
    }

    #[test]
    fn tier_counts_axis_matches_tiers_shorthand() {
        let via_alias = Scenario::parse(
            r#"{"sweep": {"gate_count": 17e9, "nodes_nm": [7], "tier_counts": [2, 4]}}"#,
        )
        .unwrap();
        let via_shorthand =
            Scenario::parse(r#"{"sweep": {"gate_count": 17e9, "nodes_nm": [7], "tiers": [2, 4]}}"#)
                .unwrap();
        let a = via_alias.build_sweep().unwrap().plan().unwrap();
        let b = via_shorthand.build_sweep().unwrap().plan().unwrap();
        assert_eq!(a.len(), b.len());
        assert!(a
            .points()
            .iter()
            .zip(b.points())
            .all(|(x, y)| x.label() == y.label()));
    }

    #[test]
    fn tier_counts_schema_errors_name_the_path() {
        // Out-of-domain entry: the path names the element.
        let err =
            Scenario::parse(r#"{"sweep": {"gate_count": 1e9, "tier_counts": [1]}}"#).unwrap_err();
        assert!(err.to_string().contains("sweep.tier_counts[0]"), "{err}");
        // Wrong element type.
        let err = Scenario::parse(r#"{"sweep": {"gate_count": 1e9, "tier_counts": ["two"]}}"#)
            .unwrap_err();
        assert!(err.to_string().contains("sweep.tier_counts[0]"), "{err}");
        // Empty list.
        let err =
            Scenario::parse(r#"{"sweep": {"gate_count": 1e9, "tier_counts": []}}"#).unwrap_err();
        assert!(err.to_string().contains("sweep.tier_counts"), "{err}");
        // Writing the axis under both names is ambiguous — rejected,
        // not silently resolved.
        let err =
            Scenario::parse(r#"{"sweep": {"gate_count": 1e9, "tiers": [2], "tier_counts": [4]}}"#)
                .unwrap_err();
        assert!(err.to_string().contains("sweep.tier_counts"), "{err}");
        assert!(err.to_string().contains("tiers"), "{err}");
    }

    #[test]
    fn unknown_fields_are_rejected_with_paths() {
        let err = Scenario::parse(r#"{"design": {"preset": "orin-2d", "oops": 1}}"#).unwrap_err();
        assert!(err.to_string().contains("design.oops"), "{err}");
        let err = Scenario::parse(
            r#"{"workload": {"throughput_tops": 1, "active_hours": 1, "utilization": 0.5}}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("workload.utilization"), "{err}");
    }

    #[test]
    fn bad_tokens_name_the_field() {
        // Registry-resolved names fail at build time (packs could
        // define them), numeric node identities still at parse time.
        let s = Scenario::parse(
            r#"{"design": {"integration": "warp", "dies": [{"node_nm": 7, "gate_count": 1e9}]}}"#,
        )
        .unwrap();
        let err = s.build_design().unwrap_err();
        assert!(err.to_string().contains("design.integration"), "{err}");
        assert!(
            err.to_string().contains("unknown technology `warp`"),
            "{err}"
        );
        let s = Scenario::parse(r#"{"context": {"fab_region": "atlantis"}}"#).unwrap();
        let err = s.build_context().unwrap_err();
        assert!(err.to_string().contains("context.fab_region"), "{err}");
        assert!(
            err.to_string().contains("unknown grid region `atlantis`"),
            "{err}"
        );
        let err =
            Scenario::parse(r#"{"sweep": {"gate_count": 1e9, "nodes_nm": [6]}}"#).unwrap_err();
        assert!(err.to_string().contains("nodes_nm[0]"), "{err}");
    }

    #[test]
    fn unknown_yield_and_power_models_error_at_build_time() {
        let s = Scenario::parse(r#"{"context": {"die_yield": "wishful"}}"#).unwrap();
        let err = s.build_context().unwrap_err();
        assert_eq!(
            err.to_string(),
            "scenario field `context.die_yield`: \
             unknown yield model `wishful` (known: paper, poisson, murphy)"
        );
        let s = Scenario::parse(r#"{"context": {"power_model": "perpetuum"}}"#).unwrap();
        let err = s.build_context().unwrap_err();
        assert!(err.to_string().contains("context.power_model"), "{err}");
        assert!(
            err.to_string().contains("unknown power model `perpetuum`"),
            "{err}"
        );
    }

    #[test]
    fn power_model_accepts_string_and_object_forms() {
        let s = Scenario::parse(r#"{"context": {"power_model": "analytical-cmos"}}"#).unwrap();
        assert!(s.build_context().is_ok());
        let s = Scenario::parse(
            r#"{"context": {"power_model": {"model": "fixed-efficiency", "tops_per_watt": 5}}}"#,
        )
        .unwrap();
        assert!(s.build_context().is_ok());
        // Parameter validation happens in the factory, path-named.
        let s = Scenario::parse(
            r#"{"context": {"power_model": {"model": "fixed-efficiency", "bogus": 1}}}"#,
        )
        .unwrap();
        let err = s.build_context().unwrap_err();
        assert!(err.to_string().contains("context.power_model"), "{err}");
        assert!(err.to_string().contains("bogus"), "{err}");
        // The object form needs a `model` field.
        let err =
            Scenario::parse(r#"{"context": {"power_model": {"tops_per_watt": 5}}}"#).unwrap_err();
        assert!(
            err.to_string().contains("context.power_model.model"),
            "{err}"
        );
    }

    #[test]
    fn sweep_node_name_axis_matches_nodes_nm() {
        let by_name =
            Scenario::parse(r#"{"sweep": {"gate_count": 17e9, "nodes": ["n7", "5nm"]}}"#).unwrap();
        let by_nm =
            Scenario::parse(r#"{"sweep": {"gate_count": 17e9, "nodes_nm": [7, 5]}}"#).unwrap();
        let a = by_name.build_sweep().unwrap().plan().unwrap();
        let b = by_nm.build_sweep().unwrap().plan().unwrap();
        assert_eq!(a.len(), b.len());
        assert!(a
            .points()
            .iter()
            .zip(b.points())
            .all(|(x, y)| x.label() == y.label()));
        // Writing the axis in both forms is ambiguous — rejected.
        let err =
            Scenario::parse(r#"{"sweep": {"gate_count": 1e9, "nodes": ["n7"], "nodes_nm": [7]}}"#)
                .unwrap_err();
        assert!(err.to_string().contains("sweep.nodes"), "{err}");
        // Unknown names carry their element path.
        let s = Scenario::parse(r#"{"sweep": {"gate_count": 1e9, "nodes": ["n6"]}}"#).unwrap();
        let err = s.build_sweep().unwrap_err();
        assert!(err.to_string().contains("sweep.nodes[0]"), "{err}");
        assert!(err.to_string().contains("unknown process node"), "{err}");
    }

    #[test]
    fn packs_block_is_structurally_validated_at_parse_time() {
        let err = Scenario::parse(r#"{"packs": "not-a-list"}"#).unwrap_err();
        assert!(err.to_string().contains("packs"), "{err}");
        let err = Scenario::parse(r#"{"packs": [7]}"#).unwrap_err();
        assert!(err.to_string().contains("packs[0]"), "{err}");
        let err = Scenario::parse(r#"{"packs": ["  "]}"#).unwrap_err();
        assert!(err.to_string().contains("packs[0]"), "{err}");
        // A missing pack file fails at build time, path-named.
        let s = Scenario::parse(r#"{"packs": ["no/such/pack.json"]}"#).unwrap();
        let err = s.build_context().unwrap_err();
        assert!(err.to_string().contains("packs[0]"), "{err}");
        assert!(err.to_string().contains("no/such/pack.json"), "{err}");
    }

    #[test]
    fn missing_blocks_error_cleanly() {
        let s = Scenario::parse("{}").unwrap();
        assert!(s.build_design().is_err());
        assert!(s.build_sweep().is_err());
        assert!(s.build_workload().unwrap().is_none());
        // Default context still builds.
        assert!(s.build_context().is_ok());
    }

    #[test]
    fn unknown_preset_is_a_schema_error() {
        let s = Scenario::parse(r#"{"design": {"preset": "warp-core"}}"#).unwrap();
        let err = s.build_design().unwrap_err();
        assert!(matches!(err, ScenarioError::Schema { .. }));
        assert!(err.to_string().contains("warp-core"));
    }

    #[test]
    fn preset_context_flows_through() {
        let s = Scenario::parse(r#"{"design": {"preset": "lakefield-d2w"}}"#).unwrap();
        let mobile = s.build_context().unwrap();
        let probe = Area::from_mm2(100.0);
        let default = ModelContext::default();
        assert!(
            mobile.package().package_area(probe) < default.package().package_area(probe),
            "lakefield preset implies the mobile package"
        );
    }
}
