//! Fixed-width text-table rendering for the `table` output format.
//!
//! The CLI deliberately carries its own renderer instead of importing
//! `tdc-bench`'s: the bench crate sits at the top of the dependency
//! DAG for *paper artifacts*, and coupling the user-facing CLI to it
//! would invert the workspace layering for ~60 lines of formatting.

/// A minimal fixed-width text table (markdown-ish pipes, padded
/// columns, deterministic output).
#[derive(Debug, Clone, Default)]
pub(crate) struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub(crate) fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (padded/truncated to the header width).
    pub(crate) fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let mut row: Vec<String> = row.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Renders the table (trailing newline included).
    pub(crate) fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(&widths) {
                let pad = w - cell.chars().count();
                line.push(' ');
                line.push_str(cell);
                line.push_str(&" ".repeat(pad + 1));
                line.push('|');
            }
            line
        };
        let mut out = render_row(&self.header);
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&"-".repeat(w + 2));
            sep.push('|');
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_padded_columns() {
        let mut t = TextTable::new(vec!["a", "long-header"]);
        t.push_row(vec!["x", "y"]);
        t.push_row(vec!["wide-cell"]); // short row is padded
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("| a "));
        assert!(lines[1].starts_with("|--"));
        // All lines have equal width.
        assert!(lines
            .iter()
            .all(|l| l.chars().count() == lines[0].chars().count()));
    }
}
