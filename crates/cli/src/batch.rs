//! `tdc batch`: evaluate many scenario files on one shared warm
//! session.
//!
//! Every file is elaborated with the same `build_*` paths and rendered
//! with the same renderers as the single-shot commands, and evaluated
//! on one [`ScenarioSession`] — so the concatenated stdout is
//! **byte-identical** to running `tdc run`/`tdc sweep` on each file in
//! a fresh process (CI diffs exactly that), while files that share
//! geometry/yield/embodied slices answer from artifacts earlier files
//! computed. Reuse accounting (per file and aggregate, including the
//! cross-request hit counters) goes to stderr in the stable
//! [`summary`](tdc_core::service::summary) `key=value` format.

use crate::report::{render_response, OutputFormat};
use crate::scenario::Scenario;
use std::io::Write;
use std::path::{Path, PathBuf};
use tdc_core::service::summary::stages_kv;
use tdc_core::service::{EvalRequest, ScenarioSession};

/// What one `tdc batch` invocation did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchSummary {
    /// Scenario files evaluated.
    pub files: usize,
    /// Files that produced a report.
    pub ok: usize,
    /// Files that failed (parse, schema, or model errors).
    pub failed: usize,
}

impl BatchSummary {
    /// Whether every file evaluated cleanly.
    #[must_use]
    pub fn all_ok(&self) -> bool {
        self.failed == 0
    }
}

/// Reads one scenario file and elaborates it into the request `tdc
/// batch` would evaluate for it (inferring run vs sweep the way a
/// user invoking the file alone would). Shared by the batch loop, the
/// batch-throughput bench, and the CI perf guard, so all three always
/// evaluate the same work for the same file. Note the session owns
/// its executor: a scenario's `sweep.workers` field only applies to
/// single-shot `tdc sweep` (stdout is worker-count-invariant either
/// way).
///
/// # Errors
///
/// Fails on unreadable files, schema violations, and request
/// elaboration errors, with the failing path in the message.
pub fn load_request(file: &Path) -> Result<(Scenario, EvalRequest), String> {
    let path = file.display();
    let text = std::fs::read_to_string(file).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let scenario = Scenario::parse(&text)
        .map(|s| s.with_base_dir(file.parent()))
        .map_err(|e| e.to_string())?;
    let request = scenario
        .build_request(scenario.infer_request_kind())
        .map_err(|e| e.to_string())?;
    Ok((scenario, request))
}

/// Expands `paths` into the scenario-file work list: files are taken
/// as given; directories contribute their `*.json` entries sorted by
/// file name (so the evaluation order — and therefore stdout — is
/// deterministic).
///
/// # Errors
///
/// Fails on unreadable directories and on directories containing no
/// scenario files.
pub fn expand_paths(paths: &[String]) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    for path in paths {
        let p = Path::new(path);
        if p.is_dir() {
            let mut entries: Vec<PathBuf> = std::fs::read_dir(p)
                .map_err(|e| format!("cannot read directory `{path}`: {e}"))?
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
                .collect();
            if entries.is_empty() {
                return Err(format!("directory `{path}` contains no .json scenarios"));
            }
            entries.sort();
            files.extend(entries);
        } else {
            files.push(p.to_path_buf());
        }
    }
    if files.is_empty() {
        return Err("`tdc batch` needs at least one scenario file or directory".to_owned());
    }
    Ok(files)
}

/// Evaluates `files` on `session`, writing each file's report to
/// `stdout` (byte-identical to the single-shot command on that file)
/// and per-file + aggregate stats lines to `stderr`.
///
/// # Errors
///
/// Only I/O failures on the output streams are hard errors; per-file
/// evaluation failures are reported on `stderr`, counted in the
/// summary, and do not stop the batch.
pub fn run_batch(
    session: &ScenarioSession,
    files: &[PathBuf],
    format: OutputFormat,
    stdout: &mut dyn Write,
    stderr: &mut dyn Write,
) -> std::io::Result<BatchSummary> {
    let mut summary = BatchSummary {
        files: files.len(),
        ok: 0,
        failed: 0,
    };
    for (i, file) in files.iter().enumerate() {
        let position = format!("batch[{}/{}] {}", i + 1, files.len(), file.display());
        match evaluate_file(session, file) {
            Ok((name, kind, report_stats, response)) => {
                summary.ok += 1;
                stdout.write_all(render_response(&name, &response, format).as_bytes())?;
                writeln!(
                    stderr,
                    "{position} kind={kind} status=ok {}",
                    stages_kv(&report_stats)
                )?;
            }
            Err(message) => {
                summary.failed += 1;
                writeln!(stderr, "{position} status=error: {message}")?;
            }
        }
    }
    let totals = session.stats();
    writeln!(
        stderr,
        "batch files={} ok={} failed={} requests={} {}",
        summary.files,
        summary.ok,
        summary.failed,
        totals.requests,
        stages_kv(&totals.stages)
    )?;
    Ok(summary)
}

type FileOutcome = (
    String,
    &'static str,
    tdc_core::sweep::PipelineStats,
    tdc_core::service::EvalResponse,
);

fn evaluate_file(session: &ScenarioSession, file: &Path) -> Result<FileOutcome, String> {
    let (scenario, request) = load_request(file)?;
    let evaluated = session.evaluate(&request).map_err(|e| e.to_string())?;
    let kind = scenario.infer_request_kind();
    Ok((
        scenario.name,
        kind.label(),
        evaluated.stats.stages,
        evaluated.response,
    ))
}
