//! The `--profile <file>` sink: turns the obs recorder's span tree and
//! the global metric catalog into one JSON document.
//!
//! The schema is documented in `docs/OBSERVABILITY.md` and pinned
//! byte-for-byte by `crates/cli/tests/profile_golden.rs`:
//!
//! ```text
//! {
//!   "version": 1,
//!   "spans":   [ { name, thread, start_ns, end_ns, duration_ns,
//!                  children: [...] }, ... ],    // roots, in record order
//!   "metrics": { "<catalog name>": <counter/gauge value or
//!                 histogram {count,sum,max,p50,p90,p99}>, ... }
//! }
//! ```
//!
//! Every metric in [`tdc_obs::metrics::CATALOG`] appears, in catalog
//! order, whether or not it moved — a consumer can rely on the key set
//! without sniffing.

use crate::json::JsonValue;
use tdc_core::sweep::EvalCache;
use tdc_obs::metrics::{snapshot, MetricValue};
use tdc_obs::SpanRecord;

/// Allow-list of u64 → f64 casts: span timestamps and counter values
/// in any real profile are far below 2^53, where the cast is exact.
#[allow(clippy::cast_precision_loss)]
fn num_u64(v: u64) -> JsonValue {
    JsonValue::Number(v as f64)
}

#[allow(clippy::cast_precision_loss)]
fn num_i64(v: i64) -> JsonValue {
    JsonValue::Number(v as f64)
}

fn span_node(spans: &[SpanRecord], children: &[Vec<usize>], index: usize) -> JsonValue {
    let span = &spans[index];
    JsonValue::Object(vec![
        ("name".to_owned(), JsonValue::String(span.name.to_owned())),
        ("thread".to_owned(), num_u64(span.thread)),
        ("start_ns".to_owned(), num_u64(span.start_ns)),
        ("end_ns".to_owned(), num_u64(span.end_ns)),
        ("duration_ns".to_owned(), num_u64(span.duration_ns())),
        (
            "children".to_owned(),
            JsonValue::Array(
                children[index]
                    .iter()
                    .map(|&child| span_node(spans, children, child))
                    .collect(),
            ),
        ),
    ])
}

fn metric_value(value: &MetricValue) -> JsonValue {
    match value {
        MetricValue::Counter(v) => num_u64(*v),
        MetricValue::Gauge(v) => num_i64(*v),
        MetricValue::Histogram(h) => JsonValue::Object(vec![
            ("count".to_owned(), num_u64(h.count)),
            ("sum".to_owned(), num_u64(h.sum)),
            ("max".to_owned(), num_u64(h.max)),
            ("p50".to_owned(), num_u64(h.p50)),
            ("p90".to_owned(), num_u64(h.p90)),
            ("p99".to_owned(), num_u64(h.p99)),
        ]),
    }
}

/// The current global metric snapshot as one JSON object, keyed by
/// catalog name in catalog order — the `metrics` member of the profile
/// document and the body of the serve `{"op": "metrics"}` response.
#[must_use]
pub fn metrics_json() -> JsonValue {
    JsonValue::Object(
        snapshot()
            .iter()
            .map(|(name, value)| ((*name).to_owned(), metric_value(value)))
            .collect(),
    )
}

/// Builds the profile document from an explicit span list plus the
/// current global metric snapshot. Spans whose parent index does not
/// resolve (recorder clipped at [`tdc_obs::MAX_SPANS`]) become roots.
#[must_use]
pub fn document(spans: &[SpanRecord]) -> JsonValue {
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots = Vec::new();
    for (index, span) in spans.iter().enumerate() {
        match span.parent {
            Some(parent) if parent < index => children[parent].push(index),
            _ => roots.push(index),
        }
    }
    let span_values = roots
        .iter()
        .map(|&root| span_node(spans, &children, root))
        .collect();
    JsonValue::Object(vec![
        ("version".to_owned(), JsonValue::Number(1.0)),
        ("spans".to_owned(), JsonValue::Array(span_values)),
        ("metrics".to_owned(), metrics_json()),
    ])
}

/// Drains the span recorder, publishes `cache`'s counters into the
/// `cache.*` gauges, and writes the rendered document to `path`.
///
/// # Errors
///
/// A message naming the path when the write fails.
pub fn write_profile(path: &str, cache: Option<&EvalCache>) -> Result<(), String> {
    if let Some(cache) = cache {
        cache.publish_obs();
    }
    let spans = tdc_obs::take_spans();
    let text = document(&spans).render();
    std::fs::write(path, text).map_err(|e| format!("cannot write profile `{path}`: {e}"))
}
