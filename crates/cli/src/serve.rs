//! `tdc serve`: a line-delimited JSON request/response loop, backed by
//! one shared warm [`ScenarioSession`].
//!
//! One request frame per input line, one response frame per output
//! line, **in input order** (the protocol and its golden transcript
//! are documented in `docs/SERVING.md`):
//!
//! ```text
//! {"id": 1, "command": "run",   "scenario": { ...scenario doc... }}
//! {"id": 2, "command": "sweep", "scenario": { ... }}
//! {"id": 3, "command": "stats"}
//! {"id": 4, "command": "shutdown"}
//! ```
//!
//! Success frames echo the `id` and embed the `--format json`
//! document of the corresponding command, compact-rendered; failures
//! — malformed JSON, frame-level schema errors, scenario schema
//! errors, model errors — answer `{"ok": false, "error": {"path":
//! ..., "message": ...}}` on the same line position and never kill
//! the server. The session shuts down gracefully on a `shutdown`
//! frame or end of input, printing an aggregate stats line (stable
//! [`summary`](tdc_core::service::summary) format) to stderr.
//!
//! The loop runs over two transports with the **same wire format**:
//!
//! * **stdin/stdout** ([`serve`]) — one client, byte-identical to
//!   every release since the protocol landed (the golden transcript
//!   in `crates/cli/tests/data/` pins it);
//! * **TCP** ([`serve_listener`], `tdc serve --listen <addr>`) — one
//!   thread per connection, every connection speaking the same frame
//!   protocol against one shared session, so clients warm each
//!   other's artifacts. A `{"command": "shutdown"}` frame closes just
//!   its own connection; `{"command": "shutdown", "scope": "server"}`
//!   additionally stops the listener and gracefully drains the other
//!   connections (each finishes the frame it is evaluating).
//!
//! Per connection, evaluation runs with bounded in-flight concurrency
//! (`--max-inflight`): up to that many frames evaluate at once on the
//! shared session, and a reorder buffer keeps responses in input
//! order. `--max-inflight 1` (the default) is fully sequential —
//! responses are deterministic down to the `stats` counters, which is
//! what the golden-transcript CI check relies on.

use crate::json::JsonValue;
use crate::report::response_document;
use crate::scenario::{RequestKind, Scenario, ScenarioError};
use std::collections::BTreeMap;
use std::io::{BufRead, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use tdc_core::service::summary::stages_kv;
use tdc_core::service::ScenarioSession;

/// What one `tdc serve` session (or one TCP connection) did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSummary {
    /// Frames answered (success and error alike).
    pub frames: u64,
    /// Frames answered with an error response.
    pub errors: u64,
}

/// What one `tdc serve --listen` run did, summed over connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ListenSummary {
    /// Connections accepted and served to completion.
    pub connections: u64,
    /// Frames answered across all connections.
    pub frames: u64,
    /// Frames answered with an error response, across all connections.
    pub errors: u64,
}

/// One parsed input line, ready to evaluate.
enum Frame {
    /// An evaluating request.
    Eval {
        id: JsonValue,
        kind: RequestKind,
        scenario: Box<Scenario>,
    },
    /// A session-stats probe.
    Stats { id: JsonValue },
    /// An obs-metrics probe (`{"op": "metrics"}`): answers the full
    /// metric catalog as a JSON object, on either transport.
    Metrics { id: JsonValue },
    /// Graceful shutdown (reading stops; in-flight frames drain).
    /// `server` is the `"scope": "server"` variant: on a TCP listener
    /// it also stops accepting and drains every other connection.
    Shutdown { id: JsonValue, server: bool },
    /// Anything unanswerable: the error response is already rendered.
    Bad { response: String },
}

fn ok_frame(id: &JsonValue, command: &str, extra: Vec<(String, JsonValue)>) -> String {
    let mut fields = vec![
        ("id".to_owned(), id.clone()),
        ("ok".to_owned(), JsonValue::Bool(true)),
        ("command".to_owned(), JsonValue::String(command.to_owned())),
    ];
    fields.extend(extra);
    JsonValue::Object(fields).render_compact()
}

fn error_frame(id: &JsonValue, path: Option<&str>, message: &str) -> String {
    JsonValue::Object(vec![
        ("id".to_owned(), id.clone()),
        ("ok".to_owned(), JsonValue::Bool(false)),
        (
            "error".to_owned(),
            JsonValue::Object(vec![
                (
                    "path".to_owned(),
                    path.map_or(JsonValue::Null, |p| JsonValue::String(p.to_owned())),
                ),
                ("message".to_owned(), JsonValue::String(message.to_owned())),
            ]),
        ),
    ])
    .render_compact()
}

fn scenario_error_frame(id: &JsonValue, err: &ScenarioError) -> String {
    match err {
        ScenarioError::Schema { path, message } => error_frame(id, Some(path), message),
        other => error_frame(id, None, &other.to_string()),
    }
}

/// Parses one input line into a frame. Protocol-level problems
/// (malformed JSON, missing/unknown `command`, missing `scenario`, a
/// bad shutdown `scope`) become [`Frame::Bad`] with a path-named error
/// response — the server answers them and keeps serving.
fn parse_frame(line: &str) -> Frame {
    let root = match JsonValue::parse(line) {
        Ok(v) => v,
        Err(e) => {
            return Frame::Bad {
                response: error_frame(&JsonValue::Null, None, &e.to_string()),
            }
        }
    };
    let id = root.get("id").cloned().unwrap_or(JsonValue::Null);
    if root.as_object().is_none() {
        return Frame::Bad {
            response: error_frame(&id, None, "a request frame must be a JSON object"),
        };
    }
    // `{"op": "metrics"}` is the one command-less frame: an obs probe
    // that predates no release, so it rides a separate key instead of
    // widening the `command` vocabulary.
    if let Some(op_value) = root.get("op") {
        return match op_value.as_str() {
            Some("metrics") => Frame::Metrics { id },
            _ => Frame::Bad {
                response: error_frame(&id, Some("op"), "expected \"metrics\""),
            },
        };
    }
    let Some(command_value) = root.get("command") else {
        return Frame::Bad {
            response: error_frame(&id, Some("command"), "required field is missing"),
        };
    };
    let Some(command) = command_value.as_str() else {
        return Frame::Bad {
            response: error_frame(
                &id,
                Some("command"),
                &format!("expected a string, got {}", command_value.type_name()),
            ),
        };
    };
    match command.trim().to_ascii_lowercase().as_str() {
        "stats" => Frame::Stats { id },
        "shutdown" => match root.get("scope").map(JsonValue::as_str) {
            None => Frame::Shutdown { id, server: false },
            Some(Some("session")) => Frame::Shutdown { id, server: false },
            Some(Some("server")) => Frame::Shutdown { id, server: true },
            Some(_) => Frame::Bad {
                response: error_frame(&id, Some("scope"), "expected \"session\" or \"server\""),
            },
        },
        other => {
            let Some(kind) = RequestKind::from_token(other) else {
                return Frame::Bad {
                    response: error_frame(
                        &id,
                        Some("command"),
                        &format!(
                            "unknown command `{other}` (run, sweep, explore, sensitivity, \
                             stats, shutdown)"
                        ),
                    ),
                };
            };
            let Some(scenario_value) = root.get("scenario") else {
                return Frame::Bad {
                    response: error_frame(&id, Some("scenario"), "required field is missing"),
                };
            };
            match Scenario::from_value(scenario_value) {
                Ok(scenario) => Frame::Eval {
                    id,
                    kind,
                    scenario: Box::new(scenario),
                },
                Err(e) => Frame::Bad {
                    response: scenario_error_frame(&id, &e),
                },
            }
        }
    }
}

/// Evaluates one frame to its response line, plus an is-error flag.
/// `client` is the session client id evaluations run as (0 for the
/// single-client stdin transport; a registered id per TCP connection).
fn answer(session: &ScenarioSession, client: u64, frame: &Frame) -> (String, bool) {
    let _obs = tdc_obs::span_timed("serve.frame", &tdc_obs::metrics::SERVE_FRAME_NS);
    let (response, is_error) = answer_frame(session, client, frame);
    if tdc_obs::enabled() {
        tdc_obs::metrics::SERVE_FRAMES.inc();
        if is_error {
            tdc_obs::metrics::SERVE_FRAME_ERRORS.inc();
        }
    }
    (response, is_error)
}

fn answer_frame(session: &ScenarioSession, client: u64, frame: &Frame) -> (String, bool) {
    match frame {
        Frame::Bad { response } => (response.clone(), true),
        Frame::Metrics { id } => {
            // Publish the live cache's counters first, so the scraped
            // gauges describe the session actually serving traffic.
            session.executor().cache().publish_obs();
            let line = JsonValue::Object(vec![
                ("id".to_owned(), id.clone()),
                ("ok".to_owned(), JsonValue::Bool(true)),
                ("op".to_owned(), JsonValue::String("metrics".to_owned())),
                ("metrics".to_owned(), crate::profile::metrics_json()),
            ])
            .render_compact();
            (line, false)
        }
        Frame::Stats { id } => {
            let stats = session.stats();
            #[allow(clippy::cast_precision_loss)]
            let n = |v: u64| JsonValue::Number(v as f64);
            let line = ok_frame(
                id,
                "stats",
                vec![(
                    "stats".to_owned(),
                    JsonValue::Object(vec![
                        ("requests".to_owned(), n(stats.requests)),
                        ("hits".to_owned(), n(stats.stages.hits())),
                        ("cross".to_owned(), n(stats.stages.cross_hits())),
                        (
                            "lookups".to_owned(),
                            n(stats.stages.hits() + stats.stages.misses()),
                        ),
                        ("entries".to_owned(), n(stats.entries as u64)),
                    ]),
                )],
            );
            (line, false)
        }
        Frame::Shutdown { id, .. } => (ok_frame(id, "shutdown", Vec::new()), false),
        Frame::Eval { id, kind, scenario } => {
            let request = match scenario.build_request(*kind) {
                Ok(r) => r,
                Err(e) => return (scenario_error_frame(id, &e), true),
            };
            match session.evaluate_as(client, &request) {
                Ok(evaluated) => (
                    ok_frame(
                        id,
                        kind.label(),
                        vec![(
                            "report".to_owned(),
                            response_document(&scenario.name, &evaluated.response),
                        )],
                    ),
                    false,
                ),
                Err(e) => (error_frame(id, None, &e.to_string()), true),
            }
        }
    }
}

/// A pull-based line source: `Ok(Some(line))` per input line (without
/// the terminator), `Ok(None)` at end of input — which for a TCP
/// connection under a server-scope drain may be *logical* end of
/// input, not socket EOF.
type LineSource<'a> = dyn FnMut() -> std::io::Result<Option<String>> + 'a;

/// Runs the frame loop over one line source until a `shutdown` frame
/// or end of input, answering as `client`. Returns whether a
/// server-scope shutdown frame ended the loop.
fn serve_lines(
    session: &ScenarioSession,
    client: u64,
    next_line: &mut LineSource<'_>,
    output: &mut dyn Write,
    summary: &mut ServeSummary,
    max_inflight: usize,
) -> std::io::Result<bool> {
    if max_inflight > 1 {
        return serve_concurrent(session, client, next_line, output, summary, max_inflight);
    }
    // Sequential fast path: fully deterministic, including the
    // `stats` counters — the golden-transcript mode.
    while let Some(line) = next_line()? {
        if line.trim().is_empty() {
            continue;
        }
        let frame = parse_frame(&line);
        let (response, is_error) = answer(session, client, &frame);
        summary.frames += 1;
        summary.errors += u64::from(is_error);
        writeln!(output, "{response}")?;
        output.flush()?;
        if let Frame::Shutdown { server, .. } = frame {
            return Ok(server);
        }
    }
    Ok(false)
}

/// Runs the serve loop over stdin/stdout-style streams until a
/// `shutdown` frame or end of input. Response frames are written to
/// `output` in input order; the aggregate stats line goes to `stderr`
/// after the last response.
///
/// # Errors
///
/// Only I/O failures on the streams are hard errors.
///
/// # Panics
///
/// Panics if an evaluation worker thread panics (request evaluation
/// itself reports failures as error frames instead of panicking).
pub fn serve(
    session: &ScenarioSession,
    input: impl BufRead,
    output: &mut dyn Write,
    stderr: &mut dyn Write,
    max_inflight: usize,
) -> std::io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    let mut lines = input.lines();
    let mut next_line = move || lines.next().transpose();
    serve_lines(
        session,
        0,
        &mut next_line,
        output,
        &mut summary,
        max_inflight,
    )?;
    let totals = session.stats();
    writeln!(
        stderr,
        "serve frames={} errors={} requests={} {}",
        summary.frames,
        summary.errors,
        totals.requests,
        stages_kv(&totals.stages)
    )?;
    Ok(summary)
}

/// The bounded-concurrency loop: a reader (this thread) parses frames
/// and enqueues at most `max_inflight` of them; workers evaluate on
/// the shared session; a reorder buffer emits responses in input
/// order. Returns whether a server-scope shutdown ended the loop.
fn serve_concurrent(
    session: &ScenarioSession,
    client: u64,
    next_line: &mut LineSource<'_>,
    output: &mut dyn Write,
    summary: &mut ServeSummary,
    max_inflight: usize,
) -> std::io::Result<bool> {
    // A bounded job queue is the in-flight limit: the reader blocks
    // once `max_inflight` frames are queued or evaluating.
    let (job_tx, job_rx) = mpsc::sync_channel::<(u64, Frame)>(max_inflight);
    let job_rx = Mutex::new(job_rx);
    let (done_tx, done_rx) = mpsc::channel::<(u64, String, bool)>();

    std::thread::scope(|scope| -> std::io::Result<bool> {
        for _ in 0..max_inflight {
            let done_tx = done_tx.clone();
            let job_rx = &job_rx;
            scope.spawn(move || loop {
                let job = job_rx.lock().expect("serve job lock poisoned").recv();
                let Ok((seq, frame)) = job else { break };
                let (response, is_error) = answer(session, client, &frame);
                if done_tx.send((seq, response, is_error)).is_err() {
                    break;
                }
            });
        }
        drop(done_tx);

        let mut next_seq = 0u64;
        let mut enqueued = 0u64;
        let mut server_shutdown = false;
        let mut pending: BTreeMap<u64, (String, bool)> = BTreeMap::new();
        let write_ready = |pending: &mut BTreeMap<u64, (String, bool)>,
                           next_seq: &mut u64,
                           output: &mut dyn Write,
                           summary: &mut ServeSummary|
         -> std::io::Result<()> {
            while let Some((response, is_error)) = pending.remove(&*next_seq) {
                summary.frames += 1;
                summary.errors += u64::from(is_error);
                writeln!(output, "{response}")?;
                output.flush()?;
                *next_seq += 1;
            }
            Ok(())
        };

        while let Some(line) = next_line()? {
            if line.trim().is_empty() {
                continue;
            }
            let frame = parse_frame(&line);
            let stop = match &frame {
                Frame::Shutdown { server, .. } => {
                    server_shutdown = *server;
                    true
                }
                _ => false,
            };
            // Drain finished work before (possibly) blocking on the
            // bounded queue, so responses flow while we wait.
            while let Ok((seq, response, is_error)) = done_rx.try_recv() {
                pending.insert(seq, (response, is_error));
            }
            write_ready(&mut pending, &mut next_seq, output, summary)?;
            job_tx
                .send((enqueued, frame))
                .expect("serve workers outlive the reader");
            enqueued += 1;
            if stop {
                break;
            }
        }
        drop(job_tx);
        while next_seq < enqueued {
            let (seq, response, is_error) =
                done_rx.recv().expect("serve workers answer every frame");
            pending.insert(seq, (response, is_error));
            write_ready(&mut pending, &mut next_seq, output, summary)?;
        }
        Ok(server_shutdown)
    })
}

/// How often a blocked connection read wakes up to check the
/// server-stop flag. Pure poll granularity for graceful drain — warm
/// responses are orders of magnitude faster than this, so the knob
/// never sits on the request path.
const STOP_POLL: Duration = Duration::from_millis(50);

/// An incremental line reader over a read timeout. `BufRead::read_line`
/// cannot be used on a socket with a read timeout — a timeout mid-line
/// discards the bytes read so far — so this keeps its own carry buffer
/// across timeouts.
struct TimeoutLines {
    stream: TcpStream,
    carry: Vec<u8>,
}

enum LineEvent {
    Line(String),
    Eof,
    /// The read timed out with no complete line; the caller decides
    /// whether to keep waiting (and can check a stop flag in between).
    Tick,
}

impl TimeoutLines {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            carry: Vec::new(),
        }
    }

    fn take_line(&mut self) -> Option<String> {
        let nl = self.carry.iter().position(|b| *b == b'\n')?;
        let mut line: Vec<u8> = self.carry.drain(..=nl).collect();
        line.pop(); // the newline
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        Some(String::from_utf8_lossy(&line).into_owned())
    }

    fn next_event(&mut self) -> std::io::Result<LineEvent> {
        if let Some(line) = self.take_line() {
            return Ok(LineEvent::Line(line));
        }
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // Socket EOF: a final unterminated line still counts.
                    if self.carry.is_empty() {
                        return Ok(LineEvent::Eof);
                    }
                    let rest = std::mem::take(&mut self.carry);
                    return Ok(LineEvent::Line(String::from_utf8_lossy(&rest).into_owned()));
                }
                Ok(n) => {
                    self.carry.extend_from_slice(&chunk[..n]);
                    if let Some(line) = self.take_line() {
                        return Ok(LineEvent::Line(line));
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(LineEvent::Tick);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Serves one accepted connection: registers a session client id,
/// runs the frame loop with stop-flag polling, and reports whether
/// this connection requested a server-scope shutdown.
fn handle_connection(
    session: &ScenarioSession,
    stream: TcpStream,
    max_inflight: usize,
    stop: &AtomicBool,
) -> (u64, ServeSummary, bool, std::io::Result<()>) {
    let client = session.register_client();
    if tdc_obs::enabled() {
        tdc_obs::metrics::SERVE_CONNECTIONS.inc();
    }
    let mut summary = ServeSummary::default();
    // One response frame per request frame is the pathological case
    // for Nagle + delayed ACK (~40 ms per closed-loop round trip on
    // loopback), so responses must go out immediately.
    let setup = stream
        .set_read_timeout(Some(STOP_POLL))
        .and_then(|()| stream.set_nodelay(true))
        .and_then(|()| stream.try_clone());
    let reader = match setup {
        Ok(reader) => reader,
        Err(e) => return (client, summary, false, Err(e)),
    };
    let mut lines = TimeoutLines::new(reader);
    let mut output = stream;
    let mut next_line = move || loop {
        match lines.next_event()? {
            LineEvent::Line(line) => return Ok(Some(line)),
            LineEvent::Eof => return Ok(None),
            // Logical end of input on a server-scope drain: the
            // connection finishes its in-flight frames and closes.
            LineEvent::Tick => {
                if stop.load(Ordering::SeqCst) {
                    return Ok(None);
                }
            }
        }
    };
    match serve_lines(
        session,
        client,
        &mut next_line,
        &mut output,
        &mut summary,
        max_inflight,
    ) {
        Ok(server_shutdown) => (client, summary, server_shutdown, Ok(())),
        Err(e) => (client, summary, false, Err(e)),
    }
}

/// Runs the multi-client TCP frontend: accepts connections on
/// `listener` until a `{"command": "shutdown", "scope": "server"}`
/// frame arrives on any of them, serving each connection the same
/// frame protocol as [`serve`] on its own thread, all against one
/// shared `session`. A connection-scope `shutdown` (or client EOF,
/// or a client I/O failure) ends only that connection; the listener
/// and every other connection keep serving. On server shutdown every
/// live connection drains gracefully — it finishes the frames it is
/// evaluating — before the call returns and writes the aggregate
/// stats line to `stderr`.
///
/// # Errors
///
/// Binding problems surface from the caller's `TcpListener::bind`;
/// here only persistent accept failures and the final stderr writes
/// are hard errors. Per-connection I/O failures are noted on `stderr`
/// (after the connections drain) and absorbed. Each connection also
/// writes one `connection client=... frames=... errors=...` stats
/// line to `stderr` as it closes — preformatted and written under a
/// single lock acquisition, so lines from connections flushing
/// concurrently never interleave mid-line (the regression test in
/// `crates/cli/tests/serve_concurrent.rs` hammers exactly this).
///
/// # Panics
///
/// Panics if a connection thread panics (frame evaluation reports
/// failures as error frames instead of panicking).
pub fn serve_listener(
    session: &ScenarioSession,
    listener: TcpListener,
    max_inflight: usize,
    stderr: &mut (dyn Write + Send),
) -> std::io::Result<ListenSummary> {
    let local = listener.local_addr()?;
    let stop = AtomicBool::new(false);
    let totals = Mutex::new(ListenSummary::default());
    let log = Mutex::new(Vec::<String>::new());
    // Connection threads share stderr through this mutex, writing each
    // per-connection stats line as ONE preformatted writeln under ONE
    // lock acquisition. Formatting inside the writeln (or one write
    // per token) let concurrently finishing connections interleave
    // *within* a line; whole lines may still order freely.
    let shared_err = Mutex::new(&mut *stderr);

    std::thread::scope(|scope| -> std::io::Result<()> {
        let mut accept_errors = 0u32;
        loop {
            let stream = match listener.accept() {
                Ok((stream, _peer)) => {
                    accept_errors = 0;
                    stream
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    // Transient accept failures (EMFILE, aborted
                    // handshakes) must not kill a server with live
                    // clients; persistent ones are a real error.
                    accept_errors += 1;
                    if accept_errors > 16 {
                        stop.store(true, Ordering::SeqCst);
                        return Err(e);
                    }
                    continue;
                }
            };
            if stop.load(Ordering::SeqCst) {
                // The shutdown wake-up connection, or a client that
                // raced the shutdown: either way, no longer serving.
                break;
            }
            let (stop, totals, log, shared_err) = (&stop, &totals, &log, &shared_err);
            scope.spawn(move || {
                let (client, summary, server_shutdown, result) =
                    handle_connection(session, stream, max_inflight, stop);
                {
                    let mut t = totals.lock().expect("listen totals lock poisoned");
                    t.connections += 1;
                    t.frames += summary.frames;
                    t.errors += summary.errors;
                }
                // Preformatted first, then a single locked writeln —
                // the line can never tear against another connection
                // flushing at the same moment.
                let line = format!(
                    "connection client={client} frames={} errors={}",
                    summary.frames, summary.errors
                );
                {
                    let mut err = shared_err.lock().expect("listen stderr lock poisoned");
                    let _ = writeln!(err, "{line}");
                }
                if let Err(e) = result {
                    // A vanished or broken client is that client's
                    // problem; note it and keep serving the rest.
                    log.lock()
                        .expect("listen log lock poisoned")
                        .push(format!("serve connection error: {e}"));
                }
                if server_shutdown && !stop.swap(true, Ordering::SeqCst) {
                    // Wake the accept loop so it observes the flag.
                    drop(TcpStream::connect(local));
                }
            });
        }
        Ok(())
        // The scope joins every connection thread here: graceful
        // drain is structural, not best-effort.
    })?;

    let stderr = shared_err
        .into_inner()
        .expect("listen stderr lock poisoned");
    let totals = *totals.lock().expect("listen totals lock poisoned");
    let stats = session.stats();
    for note in log.into_inner().expect("listen log lock poisoned") {
        writeln!(stderr, "{note}")?;
    }
    writeln!(
        stderr,
        "listen connections={} frames={} errors={} requests={} clients={} {}",
        totals.connections,
        totals.frames,
        totals.errors,
        stats.requests,
        stats.clients,
        stages_kv(&stats.stages)
    )?;
    Ok(totals)
}

/// The `--metrics-addr` sink: a background thread answering every TCP
/// connection with one HTTP/1.0 `200 OK` whose plain-text body is
/// [`tdc_obs::metrics::render_exposition`] (Prometheus-style
/// `tdc_<name> <value>` lines), the shared session's cache counters
/// published immediately before each scrape. The request itself is
/// read and discarded — any path scrapes the same document.
#[derive(Debug)]
pub struct MetricsServer {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (port 0 = ephemeral), announces the bound address
    /// on stderr as `metrics listening on <addr>`, and starts the
    /// scrape thread.
    ///
    /// # Errors
    ///
    /// A message naming the address when the bind fails.
    pub fn start(addr: &str, session: Arc<ScenarioSession>) -> Result<Self, String> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| format!("cannot expose metrics on `{addr}`: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("cannot resolve metrics address: {e}"))?;
        eprintln!("metrics listening on {local}");
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::spawn(move || loop {
            let accepted = match listener.accept() {
                Ok((stream, _peer)) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            };
            if thread_stop.load(Ordering::SeqCst) {
                break;
            }
            // A failed scrape is the scraper's problem; keep serving.
            let _ = answer_scrape(accepted, &session);
        });
        Ok(Self {
            local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Stops the scrape thread and joins it.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocked accept so it observes the flag.
        drop(TcpStream::connect(self.local));
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Reads (and discards) one HTTP request head, then answers the
/// exposition document.
fn answer_scrape(mut stream: TcpStream, session: &ScenarioSession) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&chunk[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                break;
            }
            Err(e) => return Err(e),
        }
    }
    session.executor().cache().publish_obs();
    let body = tdc_obs::metrics::render_exposition();
    let response = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}
