//! `tdc serve`: a line-delimited JSON request/response loop over
//! stdin/stdout, backed by one shared warm [`ScenarioSession`].
//!
//! One request frame per input line, one response frame per output
//! line, **in input order** (the protocol and its golden transcript
//! are documented in `docs/SERVING.md`):
//!
//! ```text
//! {"id": 1, "command": "run",   "scenario": { ...scenario doc... }}
//! {"id": 2, "command": "sweep", "scenario": { ... }}
//! {"id": 3, "command": "stats"}
//! {"id": 4, "command": "shutdown"}
//! ```
//!
//! Success frames echo the `id` and embed the `--format json`
//! document of the corresponding command, compact-rendered; failures
//! — malformed JSON, frame-level schema errors, scenario schema
//! errors, model errors — answer `{"ok": false, "error": {"path":
//! ..., "message": ...}}` on the same line position and never kill
//! the server. The session shuts down gracefully on a `shutdown`
//! frame or end of input, printing an aggregate stats line (stable
//! [`summary`](tdc_core::service::summary) format) to stderr.
//!
//! Evaluation runs with bounded in-flight concurrency
//! (`--max-inflight`): up to that many frames evaluate at once on the
//! shared session, and a reorder buffer keeps responses in input
//! order. `--max-inflight 1` (the default) is fully sequential —
//! responses are deterministic down to the `stats` counters, which is
//! what the golden-transcript CI check relies on.

use crate::json::JsonValue;
use crate::report::response_document;
use crate::scenario::{RequestKind, Scenario, ScenarioError};
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::sync::mpsc;
use std::sync::Mutex;
use tdc_core::service::summary::stages_kv;
use tdc_core::service::ScenarioSession;

/// What one `tdc serve` session did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSummary {
    /// Frames answered (success and error alike).
    pub frames: u64,
    /// Frames answered with an error response.
    pub errors: u64,
}

/// One parsed input line, ready to evaluate.
enum Frame {
    /// An evaluating request.
    Eval {
        id: JsonValue,
        kind: RequestKind,
        scenario: Box<Scenario>,
    },
    /// A session-stats probe.
    Stats { id: JsonValue },
    /// Graceful shutdown (reading stops; in-flight frames drain).
    Shutdown { id: JsonValue },
    /// Anything unanswerable: the error response is already rendered.
    Bad { response: String },
}

fn ok_frame(id: &JsonValue, command: &str, extra: Vec<(String, JsonValue)>) -> String {
    let mut fields = vec![
        ("id".to_owned(), id.clone()),
        ("ok".to_owned(), JsonValue::Bool(true)),
        ("command".to_owned(), JsonValue::String(command.to_owned())),
    ];
    fields.extend(extra);
    JsonValue::Object(fields).render_compact()
}

fn error_frame(id: &JsonValue, path: Option<&str>, message: &str) -> String {
    JsonValue::Object(vec![
        ("id".to_owned(), id.clone()),
        ("ok".to_owned(), JsonValue::Bool(false)),
        (
            "error".to_owned(),
            JsonValue::Object(vec![
                (
                    "path".to_owned(),
                    path.map_or(JsonValue::Null, |p| JsonValue::String(p.to_owned())),
                ),
                ("message".to_owned(), JsonValue::String(message.to_owned())),
            ]),
        ),
    ])
    .render_compact()
}

fn scenario_error_frame(id: &JsonValue, err: &ScenarioError) -> String {
    match err {
        ScenarioError::Schema { path, message } => error_frame(id, Some(path), message),
        other => error_frame(id, None, &other.to_string()),
    }
}

/// Parses one input line into a frame. Protocol-level problems
/// (malformed JSON, missing/unknown `command`, missing `scenario`)
/// become [`Frame::Bad`] with a path-named error response — the
/// server answers them and keeps serving.
fn parse_frame(line: &str) -> Frame {
    let root = match JsonValue::parse(line) {
        Ok(v) => v,
        Err(e) => {
            return Frame::Bad {
                response: error_frame(&JsonValue::Null, None, &e.to_string()),
            }
        }
    };
    let id = root.get("id").cloned().unwrap_or(JsonValue::Null);
    if root.as_object().is_none() {
        return Frame::Bad {
            response: error_frame(&id, None, "a request frame must be a JSON object"),
        };
    }
    let Some(command_value) = root.get("command") else {
        return Frame::Bad {
            response: error_frame(&id, Some("command"), "required field is missing"),
        };
    };
    let Some(command) = command_value.as_str() else {
        return Frame::Bad {
            response: error_frame(
                &id,
                Some("command"),
                &format!("expected a string, got {}", command_value.type_name()),
            ),
        };
    };
    match command.trim().to_ascii_lowercase().as_str() {
        "stats" => Frame::Stats { id },
        "shutdown" => Frame::Shutdown { id },
        other => {
            let Some(kind) = RequestKind::from_token(other) else {
                return Frame::Bad {
                    response: error_frame(
                        &id,
                        Some("command"),
                        &format!(
                            "unknown command `{other}` (run, sweep, explore, sensitivity, \
                             stats, shutdown)"
                        ),
                    ),
                };
            };
            let Some(scenario_value) = root.get("scenario") else {
                return Frame::Bad {
                    response: error_frame(&id, Some("scenario"), "required field is missing"),
                };
            };
            match Scenario::from_value(scenario_value) {
                Ok(scenario) => Frame::Eval {
                    id,
                    kind,
                    scenario: Box::new(scenario),
                },
                Err(e) => Frame::Bad {
                    response: scenario_error_frame(&id, &e),
                },
            }
        }
    }
}

/// Evaluates one frame to its response line, plus an is-error flag.
fn answer(session: &ScenarioSession, frame: &Frame) -> (String, bool) {
    match frame {
        Frame::Bad { response } => (response.clone(), true),
        Frame::Stats { id } => {
            let stats = session.stats();
            #[allow(clippy::cast_precision_loss)]
            let n = |v: u64| JsonValue::Number(v as f64);
            let line = ok_frame(
                id,
                "stats",
                vec![(
                    "stats".to_owned(),
                    JsonValue::Object(vec![
                        ("requests".to_owned(), n(stats.requests)),
                        ("hits".to_owned(), n(stats.stages.hits())),
                        ("cross".to_owned(), n(stats.stages.cross_hits())),
                        (
                            "lookups".to_owned(),
                            n(stats.stages.hits() + stats.stages.misses()),
                        ),
                        ("entries".to_owned(), n(stats.entries as u64)),
                    ]),
                )],
            );
            (line, false)
        }
        Frame::Shutdown { id } => (ok_frame(id, "shutdown", Vec::new()), false),
        Frame::Eval { id, kind, scenario } => {
            let request = match scenario.build_request(*kind) {
                Ok(r) => r,
                Err(e) => return (scenario_error_frame(id, &e), true),
            };
            match session.evaluate(&request) {
                Ok(evaluated) => (
                    ok_frame(
                        id,
                        kind.label(),
                        vec![(
                            "report".to_owned(),
                            response_document(&scenario.name, &evaluated.response),
                        )],
                    ),
                    false,
                ),
                Err(e) => (error_frame(id, None, &e.to_string()), true),
            }
        }
    }
}

/// Runs the serve loop until a `shutdown` frame or end of input.
/// Response frames are written to `output` in input order; the
/// aggregate stats line goes to `stderr` after the last response.
///
/// # Errors
///
/// Only I/O failures on the streams are hard errors.
///
/// # Panics
///
/// Panics if an evaluation worker thread panics (request evaluation
/// itself reports failures as error frames instead of panicking).
pub fn serve(
    session: &ScenarioSession,
    input: impl BufRead,
    output: &mut dyn Write,
    stderr: &mut dyn Write,
    max_inflight: usize,
) -> std::io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    if max_inflight <= 1 {
        // Sequential fast path: fully deterministic, including the
        // `stats` counters — the golden-transcript mode.
        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let frame = parse_frame(&line);
            let (response, is_error) = answer(session, &frame);
            summary.frames += 1;
            summary.errors += u64::from(is_error);
            writeln!(output, "{response}")?;
            if matches!(frame, Frame::Shutdown { .. }) {
                break;
            }
        }
    } else {
        serve_concurrent(session, input, output, &mut summary, max_inflight)?;
    }
    let totals = session.stats();
    writeln!(
        stderr,
        "serve frames={} errors={} requests={} {}",
        summary.frames,
        summary.errors,
        totals.requests,
        stages_kv(&totals.stages)
    )?;
    Ok(summary)
}

/// The bounded-concurrency loop: a reader (this thread) parses frames
/// and enqueues at most `max_inflight` of them; workers evaluate on
/// the shared session; a reorder buffer emits responses in input
/// order.
fn serve_concurrent(
    session: &ScenarioSession,
    input: impl BufRead,
    output: &mut dyn Write,
    summary: &mut ServeSummary,
    max_inflight: usize,
) -> std::io::Result<()> {
    // A bounded job queue is the in-flight limit: the reader blocks
    // once `max_inflight` frames are queued or evaluating.
    let (job_tx, job_rx) = mpsc::sync_channel::<(u64, Frame)>(max_inflight);
    let job_rx = Mutex::new(job_rx);
    let (done_tx, done_rx) = mpsc::channel::<(u64, String, bool)>();

    std::thread::scope(|scope| -> std::io::Result<()> {
        for _ in 0..max_inflight {
            let done_tx = done_tx.clone();
            let job_rx = &job_rx;
            scope.spawn(move || loop {
                let job = job_rx.lock().expect("serve job lock poisoned").recv();
                let Ok((seq, frame)) = job else { break };
                let (response, is_error) = answer(session, &frame);
                if done_tx.send((seq, response, is_error)).is_err() {
                    break;
                }
            });
        }
        drop(done_tx);

        let mut next_seq = 0u64;
        let mut enqueued = 0u64;
        let mut pending: BTreeMap<u64, (String, bool)> = BTreeMap::new();
        let write_ready = |pending: &mut BTreeMap<u64, (String, bool)>,
                           next_seq: &mut u64,
                           output: &mut dyn Write,
                           summary: &mut ServeSummary|
         -> std::io::Result<()> {
            while let Some((response, is_error)) = pending.remove(&*next_seq) {
                summary.frames += 1;
                summary.errors += u64::from(is_error);
                writeln!(output, "{response}")?;
                *next_seq += 1;
            }
            Ok(())
        };

        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let frame = parse_frame(&line);
            let stop = matches!(frame, Frame::Shutdown { .. });
            // Drain finished work before (possibly) blocking on the
            // bounded queue, so responses flow while we wait.
            while let Ok((seq, response, is_error)) = done_rx.try_recv() {
                pending.insert(seq, (response, is_error));
            }
            write_ready(&mut pending, &mut next_seq, output, summary)?;
            job_tx
                .send((enqueued, frame))
                .expect("serve workers outlive the reader");
            enqueued += 1;
            if stop {
                break;
            }
        }
        drop(job_tx);
        while next_seq < enqueued {
            let (seq, response, is_error) =
                done_rx.recv().expect("serve workers answer every frame");
            pending.insert(seq, (response, is_error));
            write_ready(&mut pending, &mut next_seq, output, summary)?;
        }
        Ok(())
    })
}
