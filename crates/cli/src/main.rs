//! The `tdc` binary: scenario-file-driven 3D-Carbon evaluations.
//!
//! ```text
//! tdc run         <scenario.json>     single evaluation (lifecycle, or embodied-only without a workload)
//! tdc sweep       <scenario.json>     design-space sweep, ranked by life-cycle carbon
//! tdc sensitivity <scenario.json>     one-at-a-time tornado analysis
//! tdc batch       <dir|files...>      many scenario files on one shared warm session
//! tdc serve                           JSONL request/response service on stdin/stdout
//! tdc scenarios                       list preset names scenario files can reference
//!
//! options: --format table|json|csv   --out <path>   --workers <n>   --serial
//!          --repeat <n>   --max-inflight <n>
//! ```

use std::process::ExitCode;
use tdc_cli::report::{
    render_embodied, render_lifecycle, render_sensitivity, render_sweep, OutputFormat,
};
use tdc_cli::Scenario;
use tdc_core::sensitivity::sensitivity_report;
use tdc_core::service::summary::stages_kv;
use tdc_core::service::ScenarioSession;
use tdc_core::sweep::SweepExecutor;
use tdc_core::CarbonModel;

const USAGE: &str = "\
tdc — 3D-Carbon scenario runner

USAGE:
    tdc <COMMAND> [OPTIONS] [<scenario.json>...]

COMMANDS:
    run           Evaluate the scenario's design (lifecycle; embodied-only without a workload)
    sweep         Explore the scenario's design space, ranked by life-cycle carbon
    sensitivity   One-at-a-time sensitivity (tornado) analysis of the design
    batch         Evaluate many scenario files (or a directory of them) on one
                  shared warm session; stdout is byte-identical to running each
                  file alone, stderr reports cross-request cache reuse
    serve         Line-delimited JSON request/response service on stdin/stdout
                  (protocol in docs/SERVING.md)
    scenarios     List design/workload preset names usable in scenario files
    help          Show this message

OPTIONS:
    --format <table|json|csv>   Output format (default: table; not `serve`)
    --out <path>                Write the report to a file instead of stdout
                                (`run`/`sweep`/`sensitivity` only)
    --workers <n>               Sweep worker threads (0 = one per core; overrides
                                the scenario; `sweep`/`batch`/`serve`)
    --serial                    Shorthand for --workers 1
    --repeat <n>                Execute the sweep n times on one warm executor,
                                reporting per-stage cache hit-rates per round
                                (`sweep` only; the report is from the last round)
    --max-inflight <n>          Frames evaluating at once (`serve` only;
                                default 1 = fully sequential)

Scenario files are documented in docs/SCENARIOS.md; runnable examples
live in scenarios/. The batch/serve surfaces are documented in
docs/SERVING.md.
";

struct Options {
    command: String,
    files: Vec<String>,
    format: Option<OutputFormat>,
    out: Option<String>,
    workers: Option<usize>,
    repeat: usize,
    max_inflight: usize,
}

impl Options {
    fn format(&self) -> OutputFormat {
        self.format.unwrap_or_default()
    }

    /// The single scenario file of `run`/`sweep`/`sensitivity`.
    fn single_file(&self) -> Result<&str, String> {
        match self.files.as_slice() {
            [one] => Ok(one),
            [] => Err(format!("`tdc {}` needs a scenario file", self.command)),
            _ => Err(format!(
                "`tdc {}` takes exactly one scenario file",
                self.command
            )),
        }
    }
}

fn parse_count(token: &str, what: &str) -> Result<usize, String> {
    token
        .parse()
        .map_err(|_| format!("invalid {what} `{token}`"))
}

fn parse_args(mut args: Vec<String>) -> Result<Options, String> {
    if args.is_empty() {
        return Err("missing command".to_owned());
    }
    let command = args.remove(0);
    let mut options = Options {
        command,
        files: Vec::new(),
        format: None,
        out: None,
        workers: None,
        repeat: 1,
        max_inflight: 1,
    };
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--format" => {
                let token = iter.next().ok_or("--format needs a value")?;
                options.format = Some(
                    OutputFormat::from_token(&token)
                        .ok_or_else(|| format!("unknown format `{token}` (table, json, csv)"))?,
                );
            }
            "--out" => {
                options.out = Some(iter.next().ok_or("--out needs a path")?);
            }
            "--workers" => {
                let token = iter.next().ok_or("--workers needs a count")?;
                options.workers = Some(parse_count(&token, "worker count")?);
            }
            "--serial" => options.workers = Some(1),
            "--repeat" => {
                let token = iter.next().ok_or("--repeat needs a count")?;
                let n = parse_count(&token, "repeat count")?;
                if n == 0 {
                    return Err("--repeat needs a count of at least 1".to_owned());
                }
                options.repeat = n;
            }
            "--max-inflight" => {
                let token = iter.next().ok_or("--max-inflight needs a count")?;
                let n = parse_count(&token, "in-flight count")?;
                if n == 0 {
                    return Err("--max-inflight needs a count of at least 1".to_owned());
                }
                options.max_inflight = n;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option `{other}`"));
            }
            file => options.files.push(file.to_owned()),
        }
    }
    validate(&options)?;
    Ok(options)
}

/// Rejects option/command combinations a command would silently
/// ignore, the same way the scenario schema rejects unknown fields.
fn validate(options: &Options) -> Result<(), String> {
    let command = options.command.as_str();
    if options.workers.is_some() && !matches!(command, "sweep" | "batch" | "serve") {
        return Err(format!(
            "--workers/--serial only apply to `tdc sweep`, `tdc batch`, and `tdc serve`, \
             not `tdc {command}`"
        ));
    }
    if options.repeat != 1 && command != "sweep" {
        return Err(format!(
            "--repeat only applies to `tdc sweep`, not `tdc {command}`"
        ));
    }
    if options.max_inflight != 1 && command != "serve" {
        return Err(format!(
            "--max-inflight only applies to `tdc serve`, not `tdc {command}`"
        ));
    }
    if options.out.is_some() && !matches!(command, "run" | "sweep" | "sensitivity") {
        return Err(format!("--out does not apply to `tdc {command}`"));
    }
    if options.format.is_some() && !matches!(command, "run" | "sweep" | "sensitivity" | "batch") {
        return Err(format!("--format does not apply to `tdc {command}`"));
    }
    if matches!(command, "scenarios" | "help" | "--help" | "-h" | "serve")
        && !options.files.is_empty()
    {
        return Err(format!("`tdc {command}` takes no scenario file"));
    }
    Ok(())
}

fn load_scenario(options: &Options) -> Result<Scenario, String> {
    let path = options.single_file()?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    Scenario::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn emit(options: &Options, report: &str) -> Result<(), String> {
    match &options.out {
        None => {
            print!("{report}");
            Ok(())
        }
        Some(path) => {
            std::fs::write(path, report).map_err(|e| format!("cannot write `{path}`: {e}"))
        }
    }
}

fn cmd_run(options: &Options) -> Result<(), String> {
    let scenario = load_scenario(options)?;
    let model = CarbonModel::new(scenario.build_context().map_err(|e| e.to_string())?);
    let design = scenario.build_design().map_err(|e| e.to_string())?;
    let report = match scenario.build_workload().map_err(|e| e.to_string())? {
        Some(workload) => {
            let lifecycle = model
                .lifecycle(&design, &workload)
                .map_err(|e| e.to_string())?;
            render_lifecycle(&scenario.name, &lifecycle, options.format())
        }
        None => {
            let breakdown = model.embodied(&design).map_err(|e| e.to_string())?;
            render_embodied(&scenario.name, &breakdown, options.format())
        }
    };
    emit(options, &report)
}

fn cmd_sweep(options: &Options) -> Result<(), String> {
    let scenario = load_scenario(options)?;
    let model = CarbonModel::new(scenario.build_context().map_err(|e| e.to_string())?);
    let workload = scenario
        .build_workload()
        .map_err(|e| e.to_string())?
        .ok_or("`tdc sweep` needs a workload block")?;
    let plan = scenario
        .build_sweep()
        .map_err(|e| e.to_string())?
        .plan()
        .map_err(|e| e.to_string())?;
    let workers = options
        .workers
        .or_else(|| scenario.sweep_workers())
        .unwrap_or(0);
    // One executor for every round, so `--repeat` exercises (and
    // reports) the per-stage artifact cache warming up. Each round is
    // an epoch, so round ≥ 2 warmth shows up as cross-request hits —
    // the same accounting `tdc batch`/`tdc serve` report.
    let executor = SweepExecutor::new(workers);
    let mut result = None;
    for round in 1..=options.repeat {
        executor.cache().advance_epoch();
        let r = executor
            .execute(&model, &plan, &workload)
            .map_err(|e| e.to_string())?;
        // Bookkeeping goes to stderr so stdout is byte-identical for
        // any worker count (and any repeat count).
        eprintln!("{}", sweep_stats_line(&r.stats(), round, options.repeat));
        result = Some(r);
    }
    let result = result.expect("repeat is at least 1");
    emit(
        options,
        &render_sweep(&scenario.name, result.entries(), options.format()),
    )
}

/// One sweep round's bookkeeping in the stable machine-parseable
/// `key=value` format shared with the `batch`/`serve` summaries (see
/// [`tdc_core::service::summary`]): point totals first, then the
/// per-stage counters.
fn sweep_stats_line(stats: &tdc_core::sweep::SweepStats, round: usize, rounds: usize) -> String {
    let head = if rounds > 1 {
        format!("sweep[{round}/{rounds}]")
    } else {
        "sweep".to_owned()
    };
    format!(
        "{head} points={} ranked={} dropped={} workers={} warm_points={}/{} {}",
        stats.points,
        stats.evaluated,
        stats.dropped,
        stats.workers,
        stats.cache_hits,
        stats.cache_hits + stats.cache_misses,
        stages_kv(&stats.stages),
    )
}

fn cmd_sensitivity(options: &Options) -> Result<(), String> {
    let scenario = load_scenario(options)?;
    let ctx = scenario.build_context().map_err(|e| e.to_string())?;
    let design = scenario.build_design().map_err(|e| e.to_string())?;
    let workload = scenario
        .build_workload()
        .map_err(|e| e.to_string())?
        .ok_or("`tdc sensitivity` needs a workload block")?;
    let entries = sensitivity_report(&ctx, &design, &workload).map_err(|e| e.to_string())?;
    emit(
        options,
        &render_sensitivity(&scenario.name, &entries, options.format()),
    )
}

fn cmd_batch(options: &Options) -> Result<(), String> {
    let files = tdc_cli::batch::expand_paths(&options.files)?;
    let session = ScenarioSession::new(options.workers.unwrap_or(0));
    let stdout = std::io::stdout();
    let stderr = std::io::stderr();
    let summary = tdc_cli::batch::run_batch(
        &session,
        &files,
        options.format(),
        &mut stdout.lock(),
        &mut stderr.lock(),
    )
    .map_err(|e| format!("batch output failed: {e}"))?;
    if summary.all_ok() {
        Ok(())
    } else {
        Err(format!(
            "{} of {} scenario files failed",
            summary.failed, summary.files
        ))
    }
}

fn cmd_serve(options: &Options) -> Result<(), String> {
    let session = ScenarioSession::new(options.workers.unwrap_or(0));
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let stderr = std::io::stderr();
    tdc_cli::serve::serve(
        &session,
        stdin.lock(),
        &mut stdout.lock(),
        &mut stderr.lock(),
        options.max_inflight,
    )
    .map_err(|e| format!("serve I/O failed: {e}"))?;
    Ok(())
}

fn cmd_scenarios() {
    println!("design presets (a sample — the grammar also accepts e.g. hbm<N>-d2w,");
    println!("<platform>-homo-<tech>, <platform>-het-<tech>):");
    for name in tdc_workloads::DESIGN_PRESET_EXAMPLES {
        println!("  {name}");
    }
    println!("\nworkload presets (combined with `throughput_tops`):");
    for name in tdc_workloads::WORKLOAD_PRESETS {
        println!("  {name}");
    }
    println!("\nSee docs/SCENARIOS.md for the file schema and scenarios/ for examples.");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match options.command.as_str() {
        "run" => cmd_run(&options),
        "sweep" => cmd_sweep(&options),
        "sensitivity" => cmd_sensitivity(&options),
        "batch" => cmd_batch(&options),
        "serve" => cmd_serve(&options),
        "scenarios" => {
            cmd_scenarios();
            Ok(())
        }
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
