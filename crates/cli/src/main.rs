//! The `tdc` binary: scenario-file-driven 3D-Carbon evaluations.
//!
//! ```text
//! tdc run         <scenario.json>   single evaluation (lifecycle, or embodied-only without a workload)
//! tdc sweep       <scenario.json>   design-space sweep, ranked by life-cycle carbon
//! tdc sensitivity <scenario.json>   one-at-a-time tornado analysis
//! tdc scenarios                     list preset names scenario files can reference
//!
//! options: --format table|json|csv   --out <path>   --workers <n>   --serial
//!          --repeat <n>
//! ```

use std::process::ExitCode;
use tdc_cli::report::{
    render_embodied, render_lifecycle, render_sensitivity, render_sweep, OutputFormat,
};
use tdc_cli::Scenario;
use tdc_core::sensitivity::sensitivity_report;
use tdc_core::sweep::SweepExecutor;
use tdc_core::CarbonModel;

const USAGE: &str = "\
tdc — 3D-Carbon scenario runner

USAGE:
    tdc <COMMAND> [OPTIONS] <scenario.json>

COMMANDS:
    run           Evaluate the scenario's design (lifecycle; embodied-only without a workload)
    sweep         Explore the scenario's design space, ranked by life-cycle carbon
    sensitivity   One-at-a-time sensitivity (tornado) analysis of the design
    scenarios     List design/workload preset names usable in scenario files
    help          Show this message

OPTIONS:
    --format <table|json|csv>   Output format (default: table)
    --out <path>                Write the report to a file instead of stdout
    --workers <n>               Sweep worker threads (0 = one per core; overrides the
                                scenario; `sweep` only)
    --serial                    Shorthand for --workers 1 (`sweep` only)
    --repeat <n>                Execute the sweep n times on one warm executor,
                                reporting per-stage cache hit-rates per round
                                (`sweep` only; the report is from the last round)

Scenario files are documented in docs/SCENARIOS.md; runnable examples
live in scenarios/.
";

struct Options {
    command: String,
    file: Option<String>,
    format: Option<OutputFormat>,
    out: Option<String>,
    workers: Option<usize>,
    repeat: usize,
}

impl Options {
    fn format(&self) -> OutputFormat {
        self.format.unwrap_or_default()
    }
}

fn parse_args(mut args: Vec<String>) -> Result<Options, String> {
    if args.is_empty() {
        return Err("missing command".to_owned());
    }
    let command = args.remove(0);
    let mut options = Options {
        command,
        file: None,
        format: None,
        out: None,
        workers: None,
        repeat: 1,
    };
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--format" => {
                let token = iter.next().ok_or("--format needs a value")?;
                options.format = Some(
                    OutputFormat::from_token(&token)
                        .ok_or_else(|| format!("unknown format `{token}` (table, json, csv)"))?,
                );
            }
            "--out" => {
                options.out = Some(iter.next().ok_or("--out needs a path")?);
            }
            "--workers" => {
                let token = iter.next().ok_or("--workers needs a count")?;
                let n: usize = token
                    .parse()
                    .map_err(|_| format!("invalid worker count `{token}`"))?;
                options.workers = Some(n);
            }
            "--serial" => options.workers = Some(1),
            "--repeat" => {
                let token = iter.next().ok_or("--repeat needs a count")?;
                let n: usize = token
                    .parse()
                    .map_err(|_| format!("invalid repeat count `{token}`"))?;
                if n == 0 {
                    return Err("--repeat needs a count of at least 1".to_owned());
                }
                options.repeat = n;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option `{other}`"));
            }
            file => {
                if options.file.replace(file.to_owned()).is_some() {
                    return Err("more than one scenario file given".to_owned());
                }
            }
        }
    }
    // Options that a command would silently ignore are rejected, the
    // same way the scenario schema rejects unknown fields.
    if options.workers.is_some() && options.command != "sweep" {
        return Err(format!(
            "--workers/--serial only apply to `tdc sweep`, not `tdc {}`",
            options.command
        ));
    }
    if options.repeat != 1 && options.command != "sweep" {
        return Err(format!(
            "--repeat only applies to `tdc sweep`, not `tdc {}`",
            options.command
        ));
    }
    if matches!(
        options.command.as_str(),
        "scenarios" | "help" | "--help" | "-h"
    ) {
        if options.file.is_some() {
            return Err(format!("`tdc {}` takes no scenario file", options.command));
        }
        if options.format.is_some() || options.out.is_some() {
            return Err(format!(
                "--format/--out do not apply to `tdc {}`",
                options.command
            ));
        }
    }
    Ok(options)
}

fn load_scenario(options: &Options) -> Result<Scenario, String> {
    let Some(path) = &options.file else {
        return Err(format!("`tdc {}` needs a scenario file", options.command));
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    Scenario::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn emit(options: &Options, report: &str) -> Result<(), String> {
    match &options.out {
        None => {
            print!("{report}");
            Ok(())
        }
        Some(path) => {
            std::fs::write(path, report).map_err(|e| format!("cannot write `{path}`: {e}"))
        }
    }
}

fn cmd_run(options: &Options) -> Result<(), String> {
    let scenario = load_scenario(options)?;
    let model = CarbonModel::new(scenario.build_context().map_err(|e| e.to_string())?);
    let design = scenario.build_design().map_err(|e| e.to_string())?;
    let report = match scenario.build_workload().map_err(|e| e.to_string())? {
        Some(workload) => {
            let lifecycle = model
                .lifecycle(&design, &workload)
                .map_err(|e| e.to_string())?;
            render_lifecycle(&scenario.name, &lifecycle, options.format())
        }
        None => {
            let breakdown = model.embodied(&design).map_err(|e| e.to_string())?;
            render_embodied(&scenario.name, &breakdown, options.format())
        }
    };
    emit(options, &report)
}

fn cmd_sweep(options: &Options) -> Result<(), String> {
    let scenario = load_scenario(options)?;
    let model = CarbonModel::new(scenario.build_context().map_err(|e| e.to_string())?);
    let workload = scenario
        .build_workload()
        .map_err(|e| e.to_string())?
        .ok_or("`tdc sweep` needs a workload block")?;
    let plan = scenario
        .build_sweep()
        .map_err(|e| e.to_string())?
        .plan()
        .map_err(|e| e.to_string())?;
    let workers = options
        .workers
        .or_else(|| scenario.sweep_workers())
        .unwrap_or(0);
    // One executor for every round, so `--repeat` exercises (and
    // reports) the per-stage artifact cache warming up.
    let executor = SweepExecutor::new(workers);
    let mut result = None;
    for round in 1..=options.repeat {
        let r = executor
            .execute(&model, &plan, &workload)
            .map_err(|e| e.to_string())?;
        // Bookkeeping goes to stderr so stdout is byte-identical for
        // any worker count (and any repeat count).
        eprintln!("{}", stats_line(&r.stats(), round, options.repeat));
        result = Some(r);
    }
    let result = result.expect("repeat is at least 1");
    emit(
        options,
        &render_sweep(&scenario.name, result.entries(), options.format()),
    )
}

/// One sweep round's bookkeeping: point totals, then each pipeline
/// stage's `hits/lookups`, then the aggregate warm hit-rate.
fn stats_line(stats: &tdc_core::sweep::SweepStats, round: usize, rounds: usize) -> String {
    let head = if rounds > 1 {
        format!("sweep[{round}/{rounds}]")
    } else {
        "sweep".to_owned()
    };
    let stage = |c: tdc_core::sweep::StageCounters| format!("{}/{}", c.hits, c.hits + c.misses);
    let s = stats.stages;
    format!(
        "{head}: {} points, {} ranked, {} dropped; {} workers; cache {}/{} points; \
stages physical {} yield {} embodied {} power {} operational {}; warm {:.3}",
        stats.points,
        stats.evaluated,
        stats.dropped,
        stats.workers,
        stats.cache_hits,
        stats.cache_hits + stats.cache_misses,
        stage(s.physical),
        stage(s.yields),
        stage(s.embodied),
        stage(s.power),
        stage(s.operational),
        s.warm_hit_rate(),
    )
}

fn cmd_sensitivity(options: &Options) -> Result<(), String> {
    let scenario = load_scenario(options)?;
    let ctx = scenario.build_context().map_err(|e| e.to_string())?;
    let design = scenario.build_design().map_err(|e| e.to_string())?;
    let workload = scenario
        .build_workload()
        .map_err(|e| e.to_string())?
        .ok_or("`tdc sensitivity` needs a workload block")?;
    let entries = sensitivity_report(&ctx, &design, &workload).map_err(|e| e.to_string())?;
    emit(
        options,
        &render_sensitivity(&scenario.name, &entries, options.format()),
    )
}

fn cmd_scenarios() {
    println!("design presets (a sample — the grammar also accepts e.g. hbm<N>-d2w,");
    println!("<platform>-homo-<tech>, <platform>-het-<tech>):");
    for name in tdc_workloads::DESIGN_PRESET_EXAMPLES {
        println!("  {name}");
    }
    println!("\nworkload presets (combined with `throughput_tops`):");
    for name in tdc_workloads::WORKLOAD_PRESETS {
        println!("  {name}");
    }
    println!("\nSee docs/SCENARIOS.md for the file schema and scenarios/ for examples.");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match options.command.as_str() {
        "run" => cmd_run(&options),
        "sweep" => cmd_sweep(&options),
        "sensitivity" => cmd_sensitivity(&options),
        "scenarios" => {
            cmd_scenarios();
            Ok(())
        }
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
