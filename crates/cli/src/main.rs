//! The `tdc` binary: scenario-file-driven 3D-Carbon evaluations.
//!
//! ```text
//! tdc run         <scenario.json>     single evaluation (lifecycle, or embodied-only without a workload)
//! tdc sweep       <scenario.json>     design-space sweep, ranked by life-cycle carbon
//! tdc explore     <scenario.json>     Pareto frontier + Eq. 2 ranking over the sweep plan
//! tdc sensitivity <scenario.json>     one-at-a-time tornado analysis
//! tdc batch       <dir|files...>      many scenario files on one shared warm session
//! tdc serve                           JSONL request/response service on stdin/stdout
//!                                     (or a multi-client TCP frontend with --listen)
//! tdc scenarios                       list preset names scenario files can reference
//! tdc packs       [pack.json...]      list registered models (with any packs loaded)
//! tdc packs check <pack.json...>      validate technology-pack files without evaluating
//!
//! options: --format table|json|csv   --out <path>   --workers <n>   --serial
//!          --repeat <n>   --max-inflight <n>   --listen <addr>
//!          --baseline <scenario.json>   --profile <file>
//!          --metrics-addr <addr>
//! ```

use std::io::Write as _;
use std::process::ExitCode;
use tdc_cli::report::{
    render_decision, render_embodied, render_explore, render_lifecycle, render_sensitivity,
    render_sweep, OutputFormat,
};
use tdc_cli::Scenario;
use tdc_core::explore::{ExploreStats, RefineReport};
use tdc_core::sensitivity::sensitivity_report;
use tdc_core::service::summary::stages_kv;
use tdc_core::service::ScenarioSession;
use tdc_core::sweep::SweepExecutor;
use tdc_core::CarbonModel;

const USAGE: &str = "\
tdc — 3D-Carbon scenario runner

USAGE:
    tdc <COMMAND> [OPTIONS] [<scenario.json>...]

COMMANDS:
    run           Evaluate the scenario's design (lifecycle; embodied-only
                  without a workload); with --baseline, additionally report
                  the Eq. 2 decision metrics against the baseline design
    sweep         Explore the scenario's design space, ranked by life-cycle carbon
    explore       Carbon-aware exploration of the sweep plan: constraints,
                  Pareto frontier, Eq. 2 baseline ranking, and adaptive axis
                  refinement (the scenario's `explore` block)
    sensitivity   One-at-a-time sensitivity (tornado) analysis of the design
    batch         Evaluate many scenario files (or a directory of them) on one
                  shared warm session; stdout is byte-identical to running each
                  file alone, stderr reports cross-request cache reuse
    serve         Line-delimited JSON request/response service on stdin/stdout,
                  or a multi-client TCP frontend with --listen: every
                  connection shares one warm session (protocol in
                  docs/SERVING.md)
    scenarios     List design/workload preset names usable in scenario files
    packs         List every registered model (grid regions, nodes,
                  technologies, yield/power models, presets) with provenance;
                  pack files given as arguments are loaded first. With a
                  leading `check`, validate pack files without evaluating
    help          Show this message

OPTIONS:
    --format <table|json|csv>   Output format (default: table; not `serve`)
    --out <path>                Write the report to a file instead of stdout
                                (`run`/`sweep`/`explore`/`sensitivity` only)
    --workers <n>               Sweep worker threads (0 = one per core; overrides
                                the scenario; `sweep`/`explore`/`batch`/`serve`)
    --serial                    Shorthand for --workers 1
    --repeat <n>                Execute the sweep n times on one warm executor,
                                reporting per-stage cache hit-rates per round
                                (`sweep` only; the report is from the last round)
    --per-point                 Evaluate the sweep through the staged per-point
                                path instead of the batch fast path (`sweep`
                                only; output is byte-identical either way)
    --max-inflight <n>          Frames evaluating at once, per connection
                                (`serve` only; default 1 = fully sequential)
    --listen <addr>             Serve N TCP clients on one shared warm session
                                instead of stdin/stdout (`serve` only; e.g.
                                127.0.0.1:7373, port 0 = ephemeral; the bound
                                address is announced on stderr)
    --baseline <scenario.json>  Compare the scenario's design against this
                                file's design via Eq. 2 (`run` only; the
                                scenario's workload and context are used)
    --profile <file>            Record spans + metrics while the command runs
                                and write the JSON profile document to <file>
                                (`run`/`sweep`/`explore`/`batch`; schema in
                                docs/OBSERVABILITY.md)
    --metrics-addr <addr>       Expose `tdc_*` metrics as plain text over
                                trivial HTTP on <addr> while serving
                                (`serve` only; port 0 = ephemeral; the bound
                                address is announced on stderr)

Scenario files are documented in docs/SCENARIOS.md; runnable examples
live in scenarios/. The batch/serve surfaces are documented in
docs/SERVING.md; the exploration engine in docs/EXPLORE.md; spans,
metrics, and profiling in docs/OBSERVABILITY.md.
";

#[derive(Debug)]
struct Options {
    command: String,
    files: Vec<String>,
    format: Option<OutputFormat>,
    out: Option<String>,
    workers: Option<usize>,
    repeat: usize,
    per_point: bool,
    max_inflight: usize,
    listen: Option<String>,
    baseline: Option<String>,
    profile: Option<String>,
    metrics_addr: Option<String>,
}

impl Options {
    fn format(&self) -> OutputFormat {
        self.format.unwrap_or_default()
    }

    /// The single scenario file of `run`/`sweep`/`sensitivity`.
    fn single_file(&self) -> Result<&str, String> {
        match self.files.as_slice() {
            [one] => Ok(one),
            [] => Err(format!("`tdc {}` needs a scenario file", self.command)),
            _ => Err(format!(
                "`tdc {}` takes exactly one scenario file",
                self.command
            )),
        }
    }
}

fn parse_count(token: &str, what: &str) -> Result<usize, String> {
    token
        .parse()
        .map_err(|_| format!("invalid {what} `{token}`"))
}

fn parse_args(mut args: Vec<String>) -> Result<Options, String> {
    if args.is_empty() {
        return Err("missing command".to_owned());
    }
    let command = args.remove(0);
    let mut options = Options {
        command,
        files: Vec::new(),
        format: None,
        out: None,
        workers: None,
        repeat: 1,
        per_point: false,
        max_inflight: 1,
        listen: None,
        baseline: None,
        profile: None,
        metrics_addr: None,
    };
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--format" => {
                let token = iter.next().ok_or("--format needs a value")?;
                options.format = Some(
                    OutputFormat::from_token(&token)
                        .ok_or_else(|| format!("unknown format `{token}` (table, json, csv)"))?,
                );
            }
            "--out" => {
                options.out = Some(iter.next().ok_or("--out needs a path")?);
            }
            "--workers" => {
                let token = iter.next().ok_or("--workers needs a count")?;
                options.workers = Some(parse_count(&token, "worker count")?);
            }
            "--serial" => options.workers = Some(1),
            "--repeat" => {
                let token = iter.next().ok_or("--repeat needs a count")?;
                let n = parse_count(&token, "repeat count")?;
                if n == 0 {
                    return Err("--repeat needs a count of at least 1".to_owned());
                }
                options.repeat = n;
            }
            "--per-point" => options.per_point = true,
            "--max-inflight" => {
                let token = iter.next().ok_or("--max-inflight needs a count")?;
                let n = parse_count(&token, "in-flight count")?;
                if n == 0 {
                    return Err("--max-inflight needs a count of at least 1".to_owned());
                }
                options.max_inflight = n;
            }
            "--listen" => {
                options.listen = Some(iter.next().ok_or("--listen needs an address")?);
            }
            "--baseline" => {
                options.baseline = Some(iter.next().ok_or("--baseline needs a scenario file")?);
            }
            "--profile" => {
                options.profile = Some(iter.next().ok_or("--profile needs a file path")?);
            }
            "--metrics-addr" => {
                options.metrics_addr = Some(iter.next().ok_or("--metrics-addr needs an address")?);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option `{other}`"));
            }
            file => options.files.push(file.to_owned()),
        }
    }
    validate(&options)?;
    Ok(options)
}

/// Every evaluating/serving command the binary dispatches on. The
/// option gates below are defined as subsets of this list and checked
/// against it by `gating_table_covers_only_known_commands`, so adding
/// a command without updating the gates fails the build's tests
/// instead of drifting silently.
const EVAL_COMMANDS: &[&str] = &[
    "run",
    "sweep",
    "explore",
    "sensitivity",
    "batch",
    "serve",
    "scenarios",
    "packs",
];

/// Commands an option applies to; everything else rejects it (the
/// same reject-don't-ignore stance as the scenario schema). One row
/// per option — the single place to touch when a command gains an
/// option.
const OPTION_GATES: &[(&str, &[&str])] = &[
    (
        "--format",
        &["run", "sweep", "explore", "sensitivity", "batch", "packs"],
    ),
    ("--out", &["run", "sweep", "explore", "sensitivity"]),
    (
        "--workers/--serial",
        &["sweep", "explore", "batch", "serve"],
    ),
    ("--repeat", &["sweep"]),
    ("--per-point", &["sweep"]),
    ("--max-inflight", &["serve"]),
    ("--listen", &["serve"]),
    ("--baseline", &["run"]),
    ("--profile", &["run", "sweep", "explore", "batch"]),
    ("--metrics-addr", &["serve"]),
];

/// Commands that take no scenario-file arguments at all.
const NO_FILE_COMMANDS: &[&str] = &["scenarios", "help", "--help", "-h", "serve"];

fn gate(option: &str) -> &'static [&'static str] {
    OPTION_GATES
        .iter()
        .find(|(name, _)| *name == option)
        .map(|(_, commands)| *commands)
        .unwrap_or_else(|| panic!("unknown option gate `{option}`"))
}

/// Rejects option/command combinations a command would silently
/// ignore, driven entirely by the [`OPTION_GATES`] table.
fn validate(options: &Options) -> Result<(), String> {
    let command = options.command.as_str();
    let check = |given: bool, option: &str| -> Result<(), String> {
        let allowed = gate(option);
        if given && !allowed.contains(&command) {
            let list: Vec<String> = allowed.iter().map(|c| format!("`tdc {c}`")).collect();
            return Err(format!(
                "{option} only applies to {}, not `tdc {command}`",
                list.join(", ")
            ));
        }
        Ok(())
    };
    check(options.format.is_some(), "--format")?;
    check(options.out.is_some(), "--out")?;
    check(options.workers.is_some(), "--workers/--serial")?;
    check(options.repeat != 1, "--repeat")?;
    check(options.per_point, "--per-point")?;
    check(options.max_inflight != 1, "--max-inflight")?;
    check(options.listen.is_some(), "--listen")?;
    check(options.baseline.is_some(), "--baseline")?;
    check(options.profile.is_some(), "--profile")?;
    check(options.metrics_addr.is_some(), "--metrics-addr")?;
    if NO_FILE_COMMANDS.contains(&command) && !options.files.is_empty() {
        return Err(format!("`tdc {command}` takes no scenario file"));
    }
    Ok(())
}

fn load_scenario(options: &Options) -> Result<Scenario, String> {
    let path = options.single_file()?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    Scenario::parse(&text)
        .map(|s| s.with_base_dir(std::path::Path::new(path).parent()))
        .map_err(|e| format!("{path}: {e}"))
}

fn emit(options: &Options, report: &str) -> Result<(), String> {
    match &options.out {
        None => {
            print!("{report}");
            Ok(())
        }
        Some(path) => {
            std::fs::write(path, report).map_err(|e| format!("cannot write `{path}`: {e}"))
        }
    }
}

/// Closes the command span and, when `--profile` was given, writes the
/// profile document (publishing `cache`'s counters first). Called at
/// every successful command exit so the profile always covers the full
/// command span.
fn finish_profile(
    options: &Options,
    guard: tdc_obs::SpanGuard,
    cache: Option<&tdc_core::sweep::EvalCache>,
) -> Result<(), String> {
    drop(guard);
    match &options.profile {
        Some(path) => tdc_cli::profile::write_profile(path, cache),
        None => Ok(()),
    }
}

fn cmd_run(options: &Options) -> Result<(), String> {
    let obs = tdc_obs::span("cmd.run");
    let scenario = load_scenario(options)?;
    let model = CarbonModel::new(scenario.build_context().map_err(|e| e.to_string())?);
    let design = scenario.build_design().map_err(|e| e.to_string())?;
    if let Some(baseline_path) = &options.baseline {
        // Eq. 2 standalone: the baseline file contributes its design;
        // workload and context come from the scenario being evaluated,
        // so both designs are priced under identical conditions.
        let text = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("cannot read `{baseline_path}`: {e}"))?;
        let baseline = Scenario::parse(&text)
            .map(|s| s.with_base_dir(std::path::Path::new(baseline_path).parent()))
            .map_err(|e| format!("{baseline_path}: {e}"))?;
        let base_design = baseline
            .build_design()
            .map_err(|e| format!("{baseline_path}: {e}"))?;
        let workload = scenario
            .build_workload()
            .map_err(|e| e.to_string())?
            .ok_or("`tdc run --baseline` needs a workload block in the scenario")?;
        let comparison = model
            .compare(&base_design, &design, &workload)
            .map_err(|e| e.to_string())?;
        emit(
            options,
            &render_decision(
                &scenario.name,
                &baseline.name,
                &comparison,
                options.format(),
            ),
        )?;
        return finish_profile(options, obs, None);
    }
    let report = match scenario.build_workload().map_err(|e| e.to_string())? {
        Some(workload) => {
            let lifecycle = model
                .lifecycle(&design, &workload)
                .map_err(|e| e.to_string())?;
            render_lifecycle(&scenario.name, &lifecycle, options.format())
        }
        None => {
            let breakdown = model.embodied(&design).map_err(|e| e.to_string())?;
            render_embodied(&scenario.name, &breakdown, options.format())
        }
    };
    emit(options, &report)?;
    finish_profile(options, obs, None)
}

fn cmd_sweep(options: &Options) -> Result<(), String> {
    let obs = tdc_obs::span("cmd.sweep");
    let scenario = load_scenario(options)?;
    let model = CarbonModel::new(scenario.build_context().map_err(|e| e.to_string())?);
    let workload = scenario
        .build_workload()
        .map_err(|e| e.to_string())?
        .ok_or("`tdc sweep` needs a workload block")?;
    let plan = scenario
        .build_sweep()
        .map_err(|e| e.to_string())?
        .plan()
        .map_err(|e| e.to_string())?;
    let workers = options
        .workers
        .or_else(|| scenario.sweep_workers())
        .unwrap_or(0);
    // One executor for every round, so `--repeat` exercises (and
    // reports) the per-stage artifact cache warming up. Each round is
    // an epoch, so round ≥ 2 warmth shows up as cross-request hits —
    // the same accounting `tdc batch`/`tdc serve` report.
    let executor = SweepExecutor::new(workers);
    let mut result = None;
    for round in 1..=options.repeat {
        executor.cache().advance_epoch();
        // The batch fast path is the default; `--per-point` keeps the
        // staged per-point path reachable (outputs are byte-identical
        // — CI diffs them).
        let r = if options.per_point {
            executor.execute(&model, &plan, &workload)
        } else {
            executor.execute_batched(&model, &plan, &workload)
        }
        .map_err(|e| e.to_string())?;
        // Bookkeeping goes to stderr so stdout is byte-identical for
        // any worker count (and any repeat count). Trace counters are
        // appended after the stable tokens — the line only ever grows
        // at its end.
        let trace_kv = workload.trace().map_or_else(String::new, |t| {
            format!(
                " trace_segments={} trace_hits={}",
                t.segments(),
                t.pricing_hits()
            )
        });
        eprintln!(
            "{}{trace_kv}",
            sweep_stats_line(&r.stats(), round, options.repeat)
        );
        result = Some(r);
    }
    let result = result.expect("repeat is at least 1");
    emit(
        options,
        &render_sweep(&scenario.name, result.entries(), options.format()),
    )?;
    finish_profile(options, obs, Some(executor.cache()))
}

/// One sweep round's bookkeeping in the stable machine-parseable
/// `key=value` format shared with the `batch`/`serve` summaries (see
/// [`tdc_core::service::summary`]): point totals first, then the
/// per-stage counters.
fn sweep_stats_line(stats: &tdc_core::sweep::SweepStats, round: usize, rounds: usize) -> String {
    let head = if rounds > 1 {
        format!("sweep[{round}/{rounds}]")
    } else {
        "sweep".to_owned()
    };
    format!(
        "{head} points={} ranked={} dropped={} workers={} batch={} delta_skips={} warm_points={}/{} {}",
        stats.points,
        stats.evaluated,
        stats.dropped,
        stats.workers,
        u8::from(stats.batch),
        stats.delta_skips,
        stats.cache_hits,
        stats.cache_hits + stats.cache_misses,
        stages_kv(&stats.stages),
    )
}

fn cmd_explore(options: &Options) -> Result<(), String> {
    let obs = tdc_obs::span("cmd.explore");
    let scenario = load_scenario(options)?;
    let context = scenario.build_context().map_err(|e| e.to_string())?;
    let workload = scenario
        .build_workload()
        .map_err(|e| e.to_string())?
        .ok_or("`tdc explore` needs a workload block")?;
    let plan = scenario
        .build_sweep()
        .map_err(|e| e.to_string())?
        .plan()
        .map_err(|e| e.to_string())?;
    let spec = scenario.build_explore().map_err(|e| e.to_string())?;
    let workers = options
        .workers
        .or_else(|| scenario.sweep_workers())
        .unwrap_or(0);
    let executor = SweepExecutor::new(workers);
    let result = tdc_core::explore::run(&executor, &context, &plan, &workload, &spec)
        .map_err(|e| e.to_string())?;
    // Bookkeeping on stderr, stdout worker-count-invariant — the same
    // split as `tdc sweep` (and what the CI smoke byte-diff relies on).
    let report = result.report();
    eprintln!(
        "{}",
        explore_stats_line(
            &result.stats(),
            report.frontier.len(),
            report.dominated,
            report.infeasible
        )
    );
    if let Some(refine) = &report.refine {
        eprintln!("{}", refine_stats_line(refine, &result.stats()));
    }
    emit(
        options,
        &render_explore(&scenario.name, report, options.format()),
    )?;
    finish_profile(options, obs, Some(executor.cache()))
}

/// The `tdc explore` stderr summary, in the stable `key=value` format
/// shared with `sweep`/`batch`/`serve`.
fn explore_stats_line(
    stats: &ExploreStats,
    frontier: usize,
    dominated: usize,
    infeasible: usize,
) -> String {
    format!(
        "explore points={} ranked={} dropped={} frontier={frontier} dominated={dominated} \
         infeasible={infeasible} workers={} {}",
        stats.points,
        stats.evaluated,
        stats.dropped,
        stats.workers,
        stages_kv(&stats.stages),
    )
}

/// The refinement-loop stderr summary: how many rounds/evaluations the
/// bisection spent and the per-stage reuse of exactly those
/// evaluations (CI asserts the integer `hits=` field is non-zero).
fn refine_stats_line(refine: &RefineReport, stats: &ExploreStats) -> String {
    format!(
        "refine axis={} rounds={} evals={} crossings={} {}",
        refine.axis.label(),
        refine.rounds,
        refine.evaluations,
        refine.crossings.len(),
        stages_kv(&stats.refine_stages),
    )
}

fn cmd_sensitivity(options: &Options) -> Result<(), String> {
    let scenario = load_scenario(options)?;
    let ctx = scenario.build_context().map_err(|e| e.to_string())?;
    let design = scenario.build_design().map_err(|e| e.to_string())?;
    let workload = scenario
        .build_workload()
        .map_err(|e| e.to_string())?
        .ok_or("`tdc sensitivity` needs a workload block")?;
    let entries = sensitivity_report(&ctx, &design, &workload).map_err(|e| e.to_string())?;
    emit(
        options,
        &render_sensitivity(&scenario.name, &entries, options.format()),
    )
}

fn cmd_batch(options: &Options) -> Result<(), String> {
    let obs = tdc_obs::span("cmd.batch");
    let files = tdc_cli::batch::expand_paths(&options.files)?;
    let session = ScenarioSession::new(options.workers.unwrap_or(0));
    let stdout = std::io::stdout();
    let stderr = std::io::stderr();
    let summary = tdc_cli::batch::run_batch(
        &session,
        &files,
        options.format(),
        &mut stdout.lock(),
        &mut stderr.lock(),
    )
    .map_err(|e| format!("batch output failed: {e}"))?;
    finish_profile(options, obs, Some(session.executor().cache()))?;
    if summary.all_ok() {
        Ok(())
    } else {
        Err(format!(
            "{} of {} scenario files failed",
            summary.failed, summary.files
        ))
    }
}

fn cmd_serve(options: &Options) -> Result<(), String> {
    let session = std::sync::Arc::new(ScenarioSession::new(options.workers.unwrap_or(0)));
    let metrics = match &options.metrics_addr {
        Some(addr) => Some(tdc_cli::serve::MetricsServer::start(
            addr,
            std::sync::Arc::clone(&session),
        )?),
        None => None,
    };
    let result = serve_transport(options, &session);
    if let Some(server) = metrics {
        server.stop();
    }
    result
}

/// The frame loop of `tdc serve` on its chosen transport.
fn serve_transport(options: &Options, session: &ScenarioSession) -> Result<(), String> {
    let stderr = std::io::stderr();
    if let Some(addr) = &options.listen {
        let listener = std::net::TcpListener::bind(addr)
            .map_err(|e| format!("cannot listen on `{addr}`: {e}"))?;
        // Announced on stderr so harnesses binding port 0 can find it.
        let local = listener
            .local_addr()
            .map_err(|e| format!("cannot resolve listen address: {e}"))?;
        writeln!(stderr.lock(), "serve listening on {local}")
            .map_err(|e| format!("serve I/O failed: {e}"))?;
        // Connection threads share stderr (one locked writeln per
        // stats line), so the listener takes the Send-able handle, not
        // a lock guard.
        let mut err = std::io::stderr();
        tdc_cli::serve::serve_listener(session, listener, options.max_inflight, &mut err)
            .map_err(|e| format!("serve I/O failed: {e}"))?;
        return Ok(());
    }
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    tdc_cli::serve::serve(
        session,
        stdin.lock(),
        &mut stdout.lock(),
        &mut stderr.lock(),
        options.max_inflight,
    )
    .map_err(|e| format!("serve I/O failed: {e}"))?;
    Ok(())
}

fn cmd_scenarios() {
    println!("design presets (a sample — the grammar also accepts e.g. hbm<N>-d2w,");
    println!("<platform>-homo-<tech>, <platform>-het-<tech>):");
    for name in tdc_workloads::DESIGN_PRESET_EXAMPLES {
        println!("  {name}");
    }
    println!("\nworkload presets (combined with `throughput_tops`):");
    for name in tdc_workloads::WORKLOAD_PRESETS {
        println!("  {name}");
    }
    println!("\nSee docs/SCENARIOS.md for the file schema and scenarios/ for examples.");
}

fn cmd_packs(options: &Options) -> Result<(), String> {
    // `tdc packs check <files...>` validates; anything else lists.
    let (check, files) = match options.files.split_first() {
        Some((first, rest)) if first == "check" => (true, rest),
        _ => (false, &options.files[..]),
    };
    if check {
        if options.format.is_some() {
            return Err("--format does not apply to `tdc packs check`".to_owned());
        }
        print!("{}", tdc_cli::packs::check_packs(files)?);
        return Ok(());
    }
    print!("{}", tdc_cli::packs::list_models(files, options.format())?);
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // Observability is off unless a sink asks for it (`--profile`,
    // `--metrics-addr`) or TDC_OBS=1 forces it on — with no sink the
    // disabled hot path is a relaxed load per instrumentation site.
    tdc_obs::ObsConfig::from_env()
        .enable(options.profile.is_some() || options.metrics_addr.is_some())
        .install();
    let result = match options.command.as_str() {
        "run" => cmd_run(&options),
        "sweep" => cmd_sweep(&options),
        "explore" => cmd_explore(&options),
        "sensitivity" => cmd_sensitivity(&options),
        "batch" => cmd_batch(&options),
        "serve" => cmd_serve(&options),
        "scenarios" => {
            cmd_scenarios();
            Ok(())
        }
        "packs" => cmd_packs(&options),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!(
            "unknown command `{other}` (expected one of: {})",
            EVAL_COMMANDS.join(", ")
        )),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Options, String> {
        parse_args(tokens.iter().map(ToString::to_string).collect())
    }

    /// The anti-drift audit: every command an option gate names must
    /// be a real dispatched command, so renaming/removing a command
    /// without touching the gates fails here instead of silently
    /// accepting (or rejecting) options.
    #[test]
    fn gating_table_covers_only_known_commands() {
        for (option, commands) in OPTION_GATES {
            for command in *commands {
                assert!(
                    EVAL_COMMANDS.contains(command),
                    "{option} names unknown command `{command}`"
                );
            }
        }
        for command in NO_FILE_COMMANDS {
            assert!(
                EVAL_COMMANDS.contains(command) || command.starts_with('-') || *command == "help",
                "no-file gate names unknown command `{command}`"
            );
        }
    }

    #[test]
    fn explore_accepts_the_sweep_style_options() {
        for tokens in [
            &["explore", "s.json", "--format", "csv"][..],
            &["explore", "s.json", "--out", "/tmp/x"][..],
            &["explore", "s.json", "--workers", "8"][..],
            &["explore", "s.json", "--serial"][..],
        ] {
            assert!(parse(tokens).is_ok(), "{tokens:?}");
        }
    }

    #[test]
    fn options_are_rejected_outside_their_gate() {
        for (tokens, fragment) in [
            (&["explore", "s.json", "--repeat", "2"][..], "--repeat"),
            (
                &["explore", "s.json", "--baseline", "b.json"][..],
                "--baseline",
            ),
            (&["run", "s.json", "--workers", "2"][..], "--workers"),
            (
                &["sweep", "s.json", "--baseline", "b.json"][..],
                "--baseline",
            ),
            (
                &["sensitivity", "s.json", "--max-inflight", "2"][..],
                "--max-inflight",
            ),
            (&["serve", "--format", "json"][..], "--format"),
            (&["batch", "d", "--out", "/tmp/x"][..], "--out"),
        ] {
            let err = parse(tokens).unwrap_err();
            assert!(err.contains(fragment), "{tokens:?}: {err}");
        }
    }

    #[test]
    fn baseline_applies_to_run() {
        let options = parse(&["run", "s.json", "--baseline", "b.json"]).unwrap();
        assert_eq!(options.baseline.as_deref(), Some("b.json"));
    }

    #[test]
    fn no_file_commands_reject_files() {
        for command in ["scenarios", "serve", "help"] {
            let err = parse(&[command, "s.json"]).unwrap_err();
            assert!(err.contains("takes no scenario file"), "{command}: {err}");
        }
    }
}
