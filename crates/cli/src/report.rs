//! Report rendering: every CLI command's result in `table`, `json`,
//! or `csv` form.
//!
//! All renderers are pure `&data -> String` functions, so they are
//! trivially testable and — crucially for the sweep path — produce
//! **byte-identical output for identical inputs**: a parallel sweep
//! renders exactly the bytes a serial sweep does, because the ranked
//! entries themselves are identical.

use crate::json::JsonValue;
use crate::table::TextTable;
use tdc_core::explore::{ExploreReport, FrontierEntry};
use tdc_core::sensitivity::SensitivityEntry;
use tdc_core::service::EvalResponse;
use tdc_core::sweep::SweepEntry;
use tdc_core::{ChoiceOutcome, ComparisonReport, EmbodiedBreakdown, LifecycleReport};
use tdc_integration::IntegrationTechnology;
use tdc_units::TimeSpan;

/// The output format of a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Human-readable fixed-width tables (the default).
    #[default]
    Table,
    /// Pretty-printed JSON.
    Json,
    /// RFC-4180-style comma-separated values.
    Csv,
}

impl OutputFormat {
    /// Parses a `--format` token.
    #[must_use]
    pub fn from_token(token: &str) -> Option<Self> {
        Some(match token.trim().to_ascii_lowercase().as_str() {
            "table" | "pretty" | "text" => OutputFormat::Table,
            "json" => OutputFormat::Json,
            "csv" => OutputFormat::Csv,
            _ => return None,
        })
    }
}

fn kg(value: tdc_units::Co2Mass) -> String {
    format!("{:.3}", value.kg())
}

fn tech_label(tech: Option<IntegrationTechnology>) -> &'static str {
    tech.map_or("2D", IntegrationTechnology::label)
}

/// CSV-quotes a field when needed (commas, quotes, newlines).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// The full JSON document of an embodied-only `tdc run` — exactly
/// what `--format json` prints (pretty) and a `tdc serve` response
/// embeds (compact).
#[must_use]
pub fn embodied_document(scenario: &str, breakdown: &EmbodiedBreakdown) -> JsonValue {
    JsonValue::Object(vec![
        (
            "scenario".to_owned(),
            JsonValue::String(scenario.to_owned()),
        ),
        (
            "design".to_owned(),
            JsonValue::String(breakdown.design.clone()),
        ),
        ("embodied".to_owned(), embodied_json(breakdown)),
    ])
}

/// The full JSON document of a life-cycle `tdc run` — exactly what
/// `--format json` prints (pretty) and a `tdc serve` response embeds
/// (compact).
#[must_use]
pub fn lifecycle_document(scenario: &str, report: &LifecycleReport) -> JsonValue {
    let op = &report.operational;
    let operational = JsonValue::Object(vec![
        ("power_w".to_owned(), JsonValue::Number(op.power.watts())),
        ("energy_kwh".to_owned(), JsonValue::Number(op.energy.kwh())),
        ("carbon_kg".to_owned(), JsonValue::Number(op.carbon.kg())),
        ("viable".to_owned(), JsonValue::Bool(op.is_viable())),
        (
            "runtime_stretch".to_owned(),
            JsonValue::Number(op.runtime_stretch),
        ),
        (
            "required_bandwidth_tbps".to_owned(),
            JsonValue::Number(op.required_bandwidth.tbps()),
        ),
        (
            "achieved_bandwidth_tbps".to_owned(),
            op.achieved_bandwidth
                .map_or(JsonValue::Null, |b| JsonValue::Number(b.tbps())),
        ),
    ]);
    JsonValue::Object(vec![
        (
            "scenario".to_owned(),
            JsonValue::String(scenario.to_owned()),
        ),
        (
            "design".to_owned(),
            JsonValue::String(report.embodied.design.clone()),
        ),
        ("embodied".to_owned(), embodied_json(&report.embodied)),
        ("operational".to_owned(), operational),
        (
            "total_kg".to_owned(),
            JsonValue::Number(report.total().kg()),
        ),
    ])
}

/// The full JSON document of a `tdc sweep` — exactly what
/// `--format json` prints (pretty) and a `tdc serve` response embeds
/// (compact).
#[must_use]
pub fn sweep_document(scenario: &str, entries: &[SweepEntry]) -> JsonValue {
    let items = entries
        .iter()
        .enumerate()
        .map(|(rank, e)| {
            JsonValue::Object(vec![
                ("rank".to_owned(), JsonValue::Number((rank + 1) as f64)),
                ("label".to_owned(), JsonValue::String(e.label.clone())),
                (
                    "node_nm".to_owned(),
                    JsonValue::Number(f64::from(e.node.nanometers())),
                ),
                (
                    "technology".to_owned(),
                    JsonValue::String(tech_label(e.technology).to_owned()),
                ),
                (
                    "dies".to_owned(),
                    JsonValue::Number(e.design.dies().len() as f64),
                ),
                ("viable".to_owned(), JsonValue::Bool(e.is_viable())),
                (
                    "embodied_kg".to_owned(),
                    JsonValue::Number(e.report.embodied.total().kg()),
                ),
                (
                    "operational_kg".to_owned(),
                    JsonValue::Number(e.report.operational.carbon.kg()),
                ),
                (
                    "total_kg".to_owned(),
                    JsonValue::Number(e.report.total().kg()),
                ),
            ])
        })
        .collect();
    JsonValue::Object(vec![
        (
            "scenario".to_owned(),
            JsonValue::String(scenario.to_owned()),
        ),
        ("entries".to_owned(), JsonValue::Array(items)),
    ])
}

/// The full JSON document of a `tdc sensitivity` — exactly what
/// `--format json` prints (pretty) and a `tdc serve` response embeds
/// (compact).
#[must_use]
pub fn sensitivity_document(scenario: &str, entries: &[SensitivityEntry]) -> JsonValue {
    let items = entries
        .iter()
        .map(|e| {
            JsonValue::Object(vec![
                ("knob".to_owned(), JsonValue::String(e.knob.clone())),
                ("low_kg".to_owned(), JsonValue::Number(e.low.kg())),
                ("base_kg".to_owned(), JsonValue::Number(e.base.kg())),
                ("high_kg".to_owned(), JsonValue::Number(e.high.kg())),
                ("swing_kg".to_owned(), JsonValue::Number(e.swing().kg())),
                (
                    "relative_swing".to_owned(),
                    JsonValue::Number(e.relative_swing()),
                ),
            ])
        })
        .collect();
    JsonValue::Object(vec![
        (
            "scenario".to_owned(),
            JsonValue::String(scenario.to_owned()),
        ),
        ("entries".to_owned(), JsonValue::Array(items)),
    ])
}

fn embodied_json(b: &EmbodiedBreakdown) -> JsonValue {
    let dies = b
        .dies
        .iter()
        .map(|d| {
            JsonValue::Object(vec![
                ("name".to_owned(), JsonValue::String(d.name.clone())),
                ("node".to_owned(), JsonValue::String(d.node.to_string())),
                ("area_mm2".to_owned(), JsonValue::Number(d.area.mm2())),
                (
                    "beol_layers".to_owned(),
                    JsonValue::Number(f64::from(d.beol_layers)),
                ),
                ("fab_yield".to_owned(), JsonValue::Number(d.fab_yield)),
                (
                    "composite_yield".to_owned(),
                    JsonValue::Number(d.composite_yield),
                ),
                ("carbon_kg".to_owned(), JsonValue::Number(d.carbon.kg())),
            ])
        })
        .collect();
    let substrate = b.substrate.as_ref().map_or(JsonValue::Null, |s| {
        JsonValue::Object(vec![
            ("kind".to_owned(), JsonValue::String(s.kind.to_string())),
            ("area_mm2".to_owned(), JsonValue::Number(s.area.mm2())),
            ("fab_yield".to_owned(), JsonValue::Number(s.fab_yield)),
            (
                "composite_yield".to_owned(),
                JsonValue::Number(s.composite_yield),
            ),
            ("carbon_kg".to_owned(), JsonValue::Number(s.carbon.kg())),
        ])
    });
    JsonValue::Object(vec![
        ("dies".to_owned(), JsonValue::Array(dies)),
        (
            "die_carbon_kg".to_owned(),
            JsonValue::Number(b.die_carbon.kg()),
        ),
        (
            "bonding_kg".to_owned(),
            JsonValue::Number(b.bonding_carbon.kg()),
        ),
        ("substrate".to_owned(), substrate),
        (
            "packaging_kg".to_owned(),
            JsonValue::Number(b.packaging_carbon.kg()),
        ),
        (
            "package_area_mm2".to_owned(),
            JsonValue::Number(b.package_area.mm2()),
        ),
        ("total_kg".to_owned(), JsonValue::Number(b.total().kg())),
    ])
}

fn embodied_csv_rows(b: &EmbodiedBreakdown, out: &mut String) {
    for d in &b.dies {
        out.push_str(&format!(
            "embodied,die:{},{}\n",
            csv_field(&d.name),
            kg(d.carbon)
        ));
    }
    out.push_str(&format!("embodied,bonding,{}\n", kg(b.bonding_carbon)));
    if let Some(s) = &b.substrate {
        out.push_str(&format!("embodied,substrate,{}\n", kg(s.carbon)));
    }
    out.push_str(&format!("embodied,packaging,{}\n", kg(b.packaging_carbon)));
    out.push_str(&format!("embodied,total,{}\n", kg(b.total())));
}

/// Renders a `tdc run` result for a design evaluated **without** a
/// workload (embodied carbon only).
#[must_use]
pub fn render_embodied(
    scenario: &str,
    breakdown: &EmbodiedBreakdown,
    format: OutputFormat,
) -> String {
    match format {
        OutputFormat::Table => format!("scenario: {scenario}\n\n{breakdown}\n"),
        OutputFormat::Json => embodied_document(scenario, breakdown).render(),
        OutputFormat::Csv => {
            let mut out = String::from("section,component,kg_co2e\n");
            embodied_csv_rows(breakdown, &mut out);
            out
        }
    }
}

/// Renders a `tdc run` result for a full life-cycle evaluation.
#[must_use]
pub fn render_lifecycle(scenario: &str, report: &LifecycleReport, format: OutputFormat) -> String {
    match format {
        OutputFormat::Table => format!("scenario: {scenario}\n\n{report}\n"),
        OutputFormat::Json => lifecycle_document(scenario, report).render(),
        OutputFormat::Csv => {
            let mut out = String::from("section,component,kg_co2e\n");
            embodied_csv_rows(&report.embodied, &mut out);
            out.push_str(&format!(
                "operational,total,{}\n",
                kg(report.operational.carbon)
            ));
            out.push_str(&format!("lifecycle,total,{}\n", kg(report.total())));
            out
        }
    }
}

/// Renders ranked sweep entries. Identical entries render identical
/// bytes, whatever executor produced them.
#[must_use]
pub fn render_sweep(scenario: &str, entries: &[SweepEntry], format: OutputFormat) -> String {
    match format {
        OutputFormat::Table => {
            let mut table = TextTable::new(vec![
                "rank",
                "label",
                "dies",
                "viable",
                "embodied kg",
                "operational kg",
                "total kg",
            ]);
            for (rank, e) in entries.iter().enumerate() {
                table.push_row(vec![
                    (rank + 1).to_string(),
                    e.label.clone(),
                    e.design.dies().len().to_string(),
                    if e.is_viable() { "yes" } else { "NO" }.to_owned(),
                    kg(e.report.embodied.total()),
                    kg(e.report.operational.carbon),
                    kg(e.report.total()),
                ]);
            }
            format!("scenario: {scenario}\n\n{}", table.render())
        }
        OutputFormat::Json => sweep_document(scenario, entries).render(),
        OutputFormat::Csv => {
            let mut out = String::from(
                "rank,label,node_nm,technology,dies,viable,embodied_kg,operational_kg,total_kg\n",
            );
            for (rank, e) in entries.iter().enumerate() {
                out.push_str(&format!(
                    "{},{},{},{},{},{},{},{},{}\n",
                    rank + 1,
                    csv_field(&e.label),
                    e.node.nanometers(),
                    tech_label(e.technology),
                    e.design.dies().len(),
                    e.is_viable(),
                    kg(e.report.embodied.total()),
                    kg(e.report.operational.carbon),
                    kg(e.report.total()),
                ));
            }
            out
        }
    }
}

/// The stable token of an Eq. 2 choice window.
fn outcome_token(outcome: ChoiceOutcome) -> &'static str {
    match outcome {
        ChoiceOutcome::AlwaysBetter => "always-better",
        ChoiceOutcome::BetterUntil(_) => "better-until",
        ChoiceOutcome::BetterAfter(_) => "better-after",
        ChoiceOutcome::NeverBetter => "never-better",
    }
}

/// Years with three decimals; `inf` for unbounded spans (the CSV/table
/// spelling — JSON renders non-finite numbers as `null`).
fn years(span: TimeSpan) -> String {
    if span.is_infinite() {
        "inf".to_owned()
    } else {
        format!("{:.3}", span.years())
    }
}

fn objective_value(v: f64) -> String {
    format!("{v:.3}")
}

/// The full JSON document of a `tdc explore` — exactly what
/// `--format json` prints (pretty) and a `tdc serve` response embeds
/// (compact). Only the deterministic report half is rendered, so the
/// document is byte-identical for any worker count.
#[must_use]
pub fn explore_document(scenario: &str, report: &ExploreReport) -> JsonValue {
    let objective_labels: Vec<JsonValue> = report
        .objectives
        .iter()
        .map(|o| JsonValue::String(o.label().to_owned()))
        .collect();
    let objectives_object = |values: &[f64]| {
        JsonValue::Object(
            report
                .objectives
                .iter()
                .zip(values)
                .map(|(o, v)| (o.label().to_owned(), JsonValue::Number(*v)))
                .collect(),
        )
    };
    let frontier = report
        .frontier
        .iter()
        .enumerate()
        .map(|(rank, f)| {
            let e = &f.entry;
            let decision = f.decision.as_ref().map_or(JsonValue::Null, |d| {
                JsonValue::Object(vec![
                    ("baseline".to_owned(), JsonValue::String(d.baseline.clone())),
                    (
                        "outcome".to_owned(),
                        JsonValue::String(outcome_token(d.metrics.outcome).to_owned()),
                    ),
                    (
                        "tc_years".to_owned(),
                        JsonValue::Number(d.metrics.tc.years()),
                    ),
                    (
                        "tr_years".to_owned(),
                        JsonValue::Number(d.metrics.tr.years()),
                    ),
                    (
                        "embodied_delta_kg".to_owned(),
                        JsonValue::Number(d.metrics.embodied_delta.kg()),
                    ),
                    (
                        "power_saving_w".to_owned(),
                        JsonValue::Number(d.metrics.power_saving.watts()),
                    ),
                ])
            });
            JsonValue::Object(vec![
                ("rank".to_owned(), JsonValue::Number((rank + 1) as f64)),
                ("label".to_owned(), JsonValue::String(e.label.clone())),
                (
                    "node_nm".to_owned(),
                    JsonValue::Number(f64::from(e.node.nanometers())),
                ),
                (
                    "technology".to_owned(),
                    JsonValue::String(tech_label(e.technology).to_owned()),
                ),
                (
                    "dies".to_owned(),
                    JsonValue::Number(e.design.dies().len() as f64),
                ),
                ("viable".to_owned(), JsonValue::Bool(e.is_viable())),
                ("objectives".to_owned(), objectives_object(&f.objectives)),
                ("decision".to_owned(), decision),
            ])
        })
        .collect();
    let baseline = report.baseline.as_ref().map_or(JsonValue::Null, |b| {
        JsonValue::Object(vec![
            ("label".to_owned(), JsonValue::String(b.label.clone())),
            ("on_frontier".to_owned(), JsonValue::Bool(b.on_frontier)),
            ("objectives".to_owned(), objectives_object(&b.objectives)),
        ])
    });
    let refine = report.refine.as_ref().map_or(JsonValue::Null, |r| {
        let samples = r
            .samples
            .iter()
            .map(|s| {
                JsonValue::Object(vec![
                    ("value".to_owned(), JsonValue::Number(s.value)),
                    (
                        "winner".to_owned(),
                        s.winner
                            .as_ref()
                            .map_or(JsonValue::Null, |w| JsonValue::String(w.clone())),
                    ),
                ])
            })
            .collect();
        let crossings = r
            .crossings
            .iter()
            .map(|c| {
                let label = |l: &Option<String>| {
                    l.as_ref()
                        .map_or(JsonValue::Null, |w| JsonValue::String(w.clone()))
                };
                JsonValue::Object(vec![
                    ("lower".to_owned(), JsonValue::Number(c.lower)),
                    ("upper".to_owned(), JsonValue::Number(c.upper)),
                    ("below".to_owned(), label(&c.below)),
                    ("above".to_owned(), label(&c.above)),
                ])
            })
            .collect();
        JsonValue::Object(vec![
            (
                "axis".to_owned(),
                JsonValue::String(r.axis.label().to_owned()),
            ),
            ("rounds".to_owned(), JsonValue::Number(r.rounds as f64)),
            (
                "evaluations".to_owned(),
                JsonValue::Number(r.evaluations as f64),
            ),
            ("samples".to_owned(), JsonValue::Array(samples)),
            ("crossings".to_owned(), JsonValue::Array(crossings)),
        ])
    });
    JsonValue::Object(vec![
        (
            "scenario".to_owned(),
            JsonValue::String(scenario.to_owned()),
        ),
        ("objectives".to_owned(), JsonValue::Array(objective_labels)),
        ("baseline".to_owned(), baseline),
        ("frontier".to_owned(), JsonValue::Array(frontier)),
        (
            "dominated".to_owned(),
            JsonValue::Number(report.dominated as f64),
        ),
        (
            "infeasible".to_owned(),
            JsonValue::Number(report.infeasible as f64),
        ),
        ("refine".to_owned(), refine),
    ])
}

fn frontier_decision_cells(f: &FrontierEntry) -> (String, String) {
    f.decision.as_ref().map_or_else(
        || ("baseline".to_owned(), String::new()),
        |d| {
            (
                outcome_token(d.metrics.outcome).to_owned(),
                years(d.metrics.tc),
            )
        },
    )
}

/// Renders a `tdc explore` frontier report. Identical reports render
/// identical bytes, whatever executor produced them.
#[must_use]
pub fn render_explore(scenario: &str, report: &ExploreReport, format: OutputFormat) -> String {
    match format {
        OutputFormat::Table => {
            let mut header: Vec<String> = vec![
                "rank".into(),
                "label".into(),
                "dies".into(),
                "viable".into(),
            ];
            header.extend(report.objectives.iter().map(|o| o.label().to_owned()));
            header.push("vs baseline".into());
            header.push("Tc years".into());
            let mut table = TextTable::new(header);
            for (rank, f) in report.frontier.iter().enumerate() {
                let mut row = vec![
                    (rank + 1).to_string(),
                    f.entry.label.clone(),
                    f.entry.design.dies().len().to_string(),
                    if f.entry.is_viable() { "yes" } else { "NO" }.to_owned(),
                ];
                row.extend(f.objectives.iter().map(|v| objective_value(*v)));
                let (outcome, tc) = frontier_decision_cells(f);
                row.push(outcome);
                row.push(tc);
                table.push_row(row);
            }
            let mut out = format!("scenario: {scenario}\n\n{}", table.render());
            out.push_str(&format!(
                "\nfrontier: {} point(s); dominated: {}; infeasible: {}\n",
                report.frontier.len(),
                report.dominated,
                report.infeasible
            ));
            if let Some(b) = &report.baseline {
                let values: Vec<String> = report
                    .objectives
                    .iter()
                    .zip(&b.objectives)
                    .map(|(o, v)| format!("{} {}", o.label(), objective_value(*v)))
                    .collect();
                out.push_str(&format!(
                    "baseline: {} ({}){}\n",
                    b.label,
                    values.join(", "),
                    if b.on_frontier { " [on frontier]" } else { "" }
                ));
            }
            if let Some(r) = &report.refine {
                out.push_str(&format!(
                    "refinement: {} over [{}, {}] — {} round(s), {} evaluation(s)\n",
                    r.axis.label(),
                    r.samples.first().map_or(0.0, |s| s.value),
                    r.samples.last().map_or(0.0, |s| s.value),
                    r.rounds,
                    r.evaluations
                ));
                let name = |l: &Option<String>| l.clone().unwrap_or_else(|| "(none)".to_owned());
                for c in &r.crossings {
                    out.push_str(&format!(
                        "  crossing in [{:.4}, {:.4}]: {} -> {}\n",
                        c.lower,
                        c.upper,
                        name(&c.below),
                        name(&c.above)
                    ));
                }
            }
            out
        }
        OutputFormat::Json => explore_document(scenario, report).render(),
        OutputFormat::Csv => {
            let mut out = String::from("rank,label,node_nm,technology,dies,viable");
            for o in &report.objectives {
                out.push(',');
                out.push_str(o.label());
            }
            out.push_str(",outcome,tc_years,tr_years\n");
            for (rank, f) in report.frontier.iter().enumerate() {
                let e = &f.entry;
                out.push_str(&format!(
                    "{},{},{},{},{},{}",
                    rank + 1,
                    csv_field(&e.label),
                    e.node.nanometers(),
                    tech_label(e.technology),
                    e.design.dies().len(),
                    e.is_viable(),
                ));
                for v in &f.objectives {
                    out.push(',');
                    out.push_str(&objective_value(*v));
                }
                match &f.decision {
                    None => out.push_str(",baseline,,"),
                    Some(d) => {
                        out.push_str(&format!(
                            ",{},{},{}",
                            outcome_token(d.metrics.outcome),
                            years(d.metrics.tc),
                            years(d.metrics.tr),
                        ));
                    }
                }
                out.push('\n');
            }
            out
        }
    }
}

/// The full JSON document of a `tdc run --baseline` Eq. 2 comparison.
#[must_use]
pub fn decision_document(scenario: &str, baseline: &str, report: &ComparisonReport) -> JsonValue {
    let side = |r: &LifecycleReport| {
        JsonValue::Object(vec![
            (
                "embodied_kg".to_owned(),
                JsonValue::Number(r.embodied.total().kg()),
            ),
            (
                "operational_kg".to_owned(),
                JsonValue::Number(r.operational.carbon.kg()),
            ),
            ("total_kg".to_owned(), JsonValue::Number(r.total().kg())),
            (
                "viable".to_owned(),
                JsonValue::Bool(r.operational.is_viable()),
            ),
        ])
    };
    let m = &report.metrics;
    JsonValue::Object(vec![
        (
            "scenario".to_owned(),
            JsonValue::String(scenario.to_owned()),
        ),
        (
            "baseline".to_owned(),
            JsonValue::String(baseline.to_owned()),
        ),
        ("baseline_report".to_owned(), side(&report.base)),
        ("alternative_report".to_owned(), side(&report.alt)),
        (
            "decision".to_owned(),
            JsonValue::Object(vec![
                (
                    "outcome".to_owned(),
                    JsonValue::String(outcome_token(m.outcome).to_owned()),
                ),
                ("tc_years".to_owned(), JsonValue::Number(m.tc.years())),
                ("tr_years".to_owned(), JsonValue::Number(m.tr.years())),
                (
                    "embodied_delta_kg".to_owned(),
                    JsonValue::Number(m.embodied_delta.kg()),
                ),
                (
                    "power_saving_w".to_owned(),
                    JsonValue::Number(m.power_saving.watts()),
                ),
                (
                    "embodied_save_pct".to_owned(),
                    JsonValue::Number(report.embodied_save.percent()),
                ),
                (
                    "overall_save_pct".to_owned(),
                    JsonValue::Number(report.overall_save.percent()),
                ),
            ]),
        ),
    ])
}

/// Renders a `tdc run --baseline` Eq. 2 comparison: the scenario's
/// design (the alternative) against the baseline scenario's design.
#[must_use]
pub fn render_decision(
    scenario: &str,
    baseline: &str,
    report: &ComparisonReport,
    format: OutputFormat,
) -> String {
    match format {
        OutputFormat::Table => {
            let mut table = TextTable::new(vec![
                "design",
                "embodied kg",
                "operational kg",
                "total kg",
                "viable",
            ]);
            let mut side = |name: &str, r: &LifecycleReport| {
                table.push_row(vec![
                    name.to_owned(),
                    kg(r.embodied.total()),
                    kg(r.operational.carbon),
                    kg(r.total()),
                    if r.operational.is_viable() {
                        "yes"
                    } else {
                        "NO"
                    }
                    .to_owned(),
                ]);
            };
            side(&format!("{baseline} (baseline)"), &report.base);
            side(scenario, &report.alt);
            let m = &report.metrics;
            format!(
                "scenario: {scenario}\n\n{}\ndecision (Eq. 2): {}  Tc={} years  Tr={} years\n\
                 embodied delta: {} kg  power saving: {:.3} W\n\
                 savings vs baseline: embodied {:.2} %, overall {:.2} %\n",
                table.render(),
                outcome_token(m.outcome),
                years(m.tc),
                years(m.tr),
                kg(m.embodied_delta),
                m.power_saving.watts(),
                report.embodied_save.percent(),
                report.overall_save.percent(),
            )
        }
        OutputFormat::Json => decision_document(scenario, baseline, report).render(),
        OutputFormat::Csv => {
            let m = &report.metrics;
            let mut out = String::from("metric,value\n");
            out.push_str(&format!("baseline,{}\n", csv_field(baseline)));
            out.push_str(&format!("baseline_total_kg,{}\n", kg(report.base.total())));
            out.push_str(&format!(
                "alternative_total_kg,{}\n",
                kg(report.alt.total())
            ));
            out.push_str(&format!("outcome,{}\n", outcome_token(m.outcome)));
            out.push_str(&format!("tc_years,{}\n", years(m.tc)));
            out.push_str(&format!("tr_years,{}\n", years(m.tr)));
            out.push_str(&format!("embodied_delta_kg,{}\n", kg(m.embodied_delta)));
            out.push_str(&format!("power_saving_w,{:.3}\n", m.power_saving.watts()));
            out.push_str(&format!(
                "embodied_save_pct,{:.2}\n",
                report.embodied_save.percent()
            ));
            out.push_str(&format!(
                "overall_save_pct,{:.2}\n",
                report.overall_save.percent()
            ));
            out
        }
    }
}

/// Renders a sensitivity (tornado) report.
#[must_use]
pub fn render_sensitivity(
    scenario: &str,
    entries: &[SensitivityEntry],
    format: OutputFormat,
) -> String {
    match format {
        OutputFormat::Table => {
            let mut table = TextTable::new(vec![
                "knob", "low kg", "base kg", "high kg", "swing kg", "swing %",
            ]);
            for e in entries {
                table.push_row(vec![
                    e.knob.clone(),
                    kg(e.low),
                    kg(e.base),
                    kg(e.high),
                    kg(e.swing()),
                    format!("{:.2}", e.relative_swing() * 100.0),
                ]);
            }
            format!("scenario: {scenario}\n\n{}", table.render())
        }
        OutputFormat::Json => sensitivity_document(scenario, entries).render(),
        OutputFormat::Csv => {
            let mut out = String::from("knob,low_kg,base_kg,high_kg,swing_kg,relative_swing\n");
            for e in entries {
                out.push_str(&format!(
                    "{},{},{},{},{},{:.6}\n",
                    csv_field(&e.knob),
                    kg(e.low),
                    kg(e.base),
                    kg(e.high),
                    kg(e.swing()),
                    e.relative_swing(),
                ));
            }
            out
        }
    }
}

/// Renders a session [`EvalResponse`] exactly as the corresponding
/// single-shot command would — `tdc batch` concatenates these, and the
/// byte-identity guarantee against fresh-process `tdc run`/`tdc sweep`
/// output rests on the renderers being shared, not re-implemented.
#[must_use]
pub fn render_response(scenario: &str, response: &EvalResponse, format: OutputFormat) -> String {
    match response {
        EvalResponse::Embodied(b) => render_embodied(scenario, b, format),
        EvalResponse::Lifecycle(r) => render_lifecycle(scenario, r, format),
        EvalResponse::Sweep(r) => render_sweep(scenario, r.entries(), format),
        EvalResponse::Sensitivity(entries) => render_sensitivity(scenario, entries, format),
        EvalResponse::Explore(r) => render_explore(scenario, r.report(), format),
    }
}

/// The JSON document of a session [`EvalResponse`] (what a `tdc
/// serve` response embeds under `"report"`), identical to the
/// `--format json` document of the corresponding command.
#[must_use]
pub fn response_document(scenario: &str, response: &EvalResponse) -> JsonValue {
    match response {
        EvalResponse::Embodied(b) => embodied_document(scenario, b),
        EvalResponse::Lifecycle(r) => lifecycle_document(scenario, r),
        EvalResponse::Sweep(r) => sweep_document(scenario, r.entries()),
        EvalResponse::Sensitivity(entries) => sensitivity_document(scenario, entries),
        EvalResponse::Explore(r) => explore_document(scenario, r.report()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdc_core::sweep::DesignSweep;
    use tdc_core::{CarbonModel, ChipDesign, DieSpec, ModelContext, Workload};
    use tdc_technode::ProcessNode;
    use tdc_units::{Throughput, TimeSpan};

    fn sample_entries() -> Vec<SweepEntry> {
        let model = CarbonModel::new(ModelContext::default());
        let workload = Workload::fixed(
            "app",
            Throughput::from_tops(100.0),
            TimeSpan::from_hours(10_000.0),
        );
        DesignSweep::new(8.0e9)
            .nodes(vec![ProcessNode::N7])
            .run(&model, &workload)
            .unwrap()
    }

    #[test]
    fn all_formats_render_sweeps() {
        let entries = sample_entries();
        let table = render_sweep("s", &entries, OutputFormat::Table);
        assert!(table.contains("rank") && table.contains("7 nm/2D"));
        let json = render_sweep("s", &entries, OutputFormat::Json);
        let parsed = JsonValue::parse(&json).unwrap();
        assert_eq!(
            parsed.get("entries").unwrap().as_array().unwrap().len(),
            entries.len()
        );
        let csv = render_sweep("s", &entries, OutputFormat::Csv);
        assert_eq!(csv.lines().count(), entries.len() + 1);
        assert!(csv.starts_with("rank,label,"));
    }

    #[test]
    fn lifecycle_formats_agree_on_total() {
        let model = CarbonModel::new(ModelContext::default());
        let design = ChipDesign::monolithic_2d(
            DieSpec::builder("d", ProcessNode::N7)
                .gate_count(5.0e9)
                .build()
                .unwrap(),
        );
        let workload = Workload::fixed(
            "app",
            Throughput::from_tops(100.0),
            TimeSpan::from_hours(10_000.0),
        );
        let report = model.lifecycle(&design, &workload).unwrap();
        let json = render_lifecycle("s", &report, OutputFormat::Json);
        let parsed = JsonValue::parse(&json).unwrap();
        let total = parsed.get("total_kg").unwrap().as_f64().unwrap();
        assert!((total - report.total().kg()).abs() < 1e-9);
        let csv = render_lifecycle("s", &report, OutputFormat::Csv);
        assert!(csv.contains("lifecycle,total,"));
        let table = render_lifecycle("s", &report, OutputFormat::Table);
        assert!(table.contains("LIFECYCLE"));
    }

    #[test]
    fn embodied_only_renders() {
        let model = CarbonModel::new(ModelContext::default());
        let design = ChipDesign::monolithic_2d(
            DieSpec::builder("d", ProcessNode::N7)
                .gate_count(5.0e9)
                .build()
                .unwrap(),
        );
        let b = model.embodied(&design).unwrap();
        for fmt in [OutputFormat::Table, OutputFormat::Json, OutputFormat::Csv] {
            let out = render_embodied("s", &b, fmt);
            assert!(!out.is_empty());
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        let entries = sample_entries();
        for fmt in [OutputFormat::Table, OutputFormat::Json, OutputFormat::Csv] {
            assert_eq!(
                render_sweep("s", &entries, fmt),
                render_sweep("s", &entries, fmt)
            );
        }
    }

    #[test]
    fn csv_quoting() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("a\"b"), "\"a\"\"b\"");
    }

    #[test]
    fn format_tokens() {
        assert_eq!(OutputFormat::from_token("JSON"), Some(OutputFormat::Json));
        assert_eq!(OutputFormat::from_token("table"), Some(OutputFormat::Table));
        assert_eq!(OutputFormat::from_token("csv"), Some(OutputFormat::Csv));
        assert_eq!(OutputFormat::from_token("xml"), None);
    }
}
