//! Report rendering: every CLI command's result in `table`, `json`,
//! or `csv` form.
//!
//! All renderers are pure `&data -> String` functions, so they are
//! trivially testable and — crucially for the sweep path — produce
//! **byte-identical output for identical inputs**: a parallel sweep
//! renders exactly the bytes a serial sweep does, because the ranked
//! entries themselves are identical.

use crate::json::JsonValue;
use crate::table::TextTable;
use tdc_core::sensitivity::SensitivityEntry;
use tdc_core::service::EvalResponse;
use tdc_core::sweep::SweepEntry;
use tdc_core::{EmbodiedBreakdown, LifecycleReport};
use tdc_integration::IntegrationTechnology;

/// The output format of a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Human-readable fixed-width tables (the default).
    #[default]
    Table,
    /// Pretty-printed JSON.
    Json,
    /// RFC-4180-style comma-separated values.
    Csv,
}

impl OutputFormat {
    /// Parses a `--format` token.
    #[must_use]
    pub fn from_token(token: &str) -> Option<Self> {
        Some(match token.trim().to_ascii_lowercase().as_str() {
            "table" | "pretty" | "text" => OutputFormat::Table,
            "json" => OutputFormat::Json,
            "csv" => OutputFormat::Csv,
            _ => return None,
        })
    }
}

fn kg(value: tdc_units::Co2Mass) -> String {
    format!("{:.3}", value.kg())
}

fn tech_label(tech: Option<IntegrationTechnology>) -> &'static str {
    tech.map_or("2D", IntegrationTechnology::label)
}

/// CSV-quotes a field when needed (commas, quotes, newlines).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// The full JSON document of an embodied-only `tdc run` — exactly
/// what `--format json` prints (pretty) and a `tdc serve` response
/// embeds (compact).
#[must_use]
pub fn embodied_document(scenario: &str, breakdown: &EmbodiedBreakdown) -> JsonValue {
    JsonValue::Object(vec![
        (
            "scenario".to_owned(),
            JsonValue::String(scenario.to_owned()),
        ),
        (
            "design".to_owned(),
            JsonValue::String(breakdown.design.clone()),
        ),
        ("embodied".to_owned(), embodied_json(breakdown)),
    ])
}

/// The full JSON document of a life-cycle `tdc run` — exactly what
/// `--format json` prints (pretty) and a `tdc serve` response embeds
/// (compact).
#[must_use]
pub fn lifecycle_document(scenario: &str, report: &LifecycleReport) -> JsonValue {
    let op = &report.operational;
    let operational = JsonValue::Object(vec![
        ("power_w".to_owned(), JsonValue::Number(op.power.watts())),
        ("energy_kwh".to_owned(), JsonValue::Number(op.energy.kwh())),
        ("carbon_kg".to_owned(), JsonValue::Number(op.carbon.kg())),
        ("viable".to_owned(), JsonValue::Bool(op.is_viable())),
        (
            "runtime_stretch".to_owned(),
            JsonValue::Number(op.runtime_stretch),
        ),
        (
            "required_bandwidth_tbps".to_owned(),
            JsonValue::Number(op.required_bandwidth.tbps()),
        ),
        (
            "achieved_bandwidth_tbps".to_owned(),
            op.achieved_bandwidth
                .map_or(JsonValue::Null, |b| JsonValue::Number(b.tbps())),
        ),
    ]);
    JsonValue::Object(vec![
        (
            "scenario".to_owned(),
            JsonValue::String(scenario.to_owned()),
        ),
        (
            "design".to_owned(),
            JsonValue::String(report.embodied.design.clone()),
        ),
        ("embodied".to_owned(), embodied_json(&report.embodied)),
        ("operational".to_owned(), operational),
        (
            "total_kg".to_owned(),
            JsonValue::Number(report.total().kg()),
        ),
    ])
}

/// The full JSON document of a `tdc sweep` — exactly what
/// `--format json` prints (pretty) and a `tdc serve` response embeds
/// (compact).
#[must_use]
pub fn sweep_document(scenario: &str, entries: &[SweepEntry]) -> JsonValue {
    let items = entries
        .iter()
        .enumerate()
        .map(|(rank, e)| {
            JsonValue::Object(vec![
                ("rank".to_owned(), JsonValue::Number((rank + 1) as f64)),
                ("label".to_owned(), JsonValue::String(e.label.clone())),
                (
                    "node_nm".to_owned(),
                    JsonValue::Number(f64::from(e.node.nanometers())),
                ),
                (
                    "technology".to_owned(),
                    JsonValue::String(tech_label(e.technology).to_owned()),
                ),
                (
                    "dies".to_owned(),
                    JsonValue::Number(e.design.dies().len() as f64),
                ),
                ("viable".to_owned(), JsonValue::Bool(e.is_viable())),
                (
                    "embodied_kg".to_owned(),
                    JsonValue::Number(e.report.embodied.total().kg()),
                ),
                (
                    "operational_kg".to_owned(),
                    JsonValue::Number(e.report.operational.carbon.kg()),
                ),
                (
                    "total_kg".to_owned(),
                    JsonValue::Number(e.report.total().kg()),
                ),
            ])
        })
        .collect();
    JsonValue::Object(vec![
        (
            "scenario".to_owned(),
            JsonValue::String(scenario.to_owned()),
        ),
        ("entries".to_owned(), JsonValue::Array(items)),
    ])
}

/// The full JSON document of a `tdc sensitivity` — exactly what
/// `--format json` prints (pretty) and a `tdc serve` response embeds
/// (compact).
#[must_use]
pub fn sensitivity_document(scenario: &str, entries: &[SensitivityEntry]) -> JsonValue {
    let items = entries
        .iter()
        .map(|e| {
            JsonValue::Object(vec![
                ("knob".to_owned(), JsonValue::String(e.knob.clone())),
                ("low_kg".to_owned(), JsonValue::Number(e.low.kg())),
                ("base_kg".to_owned(), JsonValue::Number(e.base.kg())),
                ("high_kg".to_owned(), JsonValue::Number(e.high.kg())),
                ("swing_kg".to_owned(), JsonValue::Number(e.swing().kg())),
                (
                    "relative_swing".to_owned(),
                    JsonValue::Number(e.relative_swing()),
                ),
            ])
        })
        .collect();
    JsonValue::Object(vec![
        (
            "scenario".to_owned(),
            JsonValue::String(scenario.to_owned()),
        ),
        ("entries".to_owned(), JsonValue::Array(items)),
    ])
}

fn embodied_json(b: &EmbodiedBreakdown) -> JsonValue {
    let dies = b
        .dies
        .iter()
        .map(|d| {
            JsonValue::Object(vec![
                ("name".to_owned(), JsonValue::String(d.name.clone())),
                ("node".to_owned(), JsonValue::String(d.node.to_string())),
                ("area_mm2".to_owned(), JsonValue::Number(d.area.mm2())),
                (
                    "beol_layers".to_owned(),
                    JsonValue::Number(f64::from(d.beol_layers)),
                ),
                ("fab_yield".to_owned(), JsonValue::Number(d.fab_yield)),
                (
                    "composite_yield".to_owned(),
                    JsonValue::Number(d.composite_yield),
                ),
                ("carbon_kg".to_owned(), JsonValue::Number(d.carbon.kg())),
            ])
        })
        .collect();
    let substrate = b.substrate.as_ref().map_or(JsonValue::Null, |s| {
        JsonValue::Object(vec![
            ("kind".to_owned(), JsonValue::String(s.kind.to_string())),
            ("area_mm2".to_owned(), JsonValue::Number(s.area.mm2())),
            ("fab_yield".to_owned(), JsonValue::Number(s.fab_yield)),
            (
                "composite_yield".to_owned(),
                JsonValue::Number(s.composite_yield),
            ),
            ("carbon_kg".to_owned(), JsonValue::Number(s.carbon.kg())),
        ])
    });
    JsonValue::Object(vec![
        ("dies".to_owned(), JsonValue::Array(dies)),
        (
            "die_carbon_kg".to_owned(),
            JsonValue::Number(b.die_carbon.kg()),
        ),
        (
            "bonding_kg".to_owned(),
            JsonValue::Number(b.bonding_carbon.kg()),
        ),
        ("substrate".to_owned(), substrate),
        (
            "packaging_kg".to_owned(),
            JsonValue::Number(b.packaging_carbon.kg()),
        ),
        (
            "package_area_mm2".to_owned(),
            JsonValue::Number(b.package_area.mm2()),
        ),
        ("total_kg".to_owned(), JsonValue::Number(b.total().kg())),
    ])
}

fn embodied_csv_rows(b: &EmbodiedBreakdown, out: &mut String) {
    for d in &b.dies {
        out.push_str(&format!(
            "embodied,die:{},{}\n",
            csv_field(&d.name),
            kg(d.carbon)
        ));
    }
    out.push_str(&format!("embodied,bonding,{}\n", kg(b.bonding_carbon)));
    if let Some(s) = &b.substrate {
        out.push_str(&format!("embodied,substrate,{}\n", kg(s.carbon)));
    }
    out.push_str(&format!("embodied,packaging,{}\n", kg(b.packaging_carbon)));
    out.push_str(&format!("embodied,total,{}\n", kg(b.total())));
}

/// Renders a `tdc run` result for a design evaluated **without** a
/// workload (embodied carbon only).
#[must_use]
pub fn render_embodied(
    scenario: &str,
    breakdown: &EmbodiedBreakdown,
    format: OutputFormat,
) -> String {
    match format {
        OutputFormat::Table => format!("scenario: {scenario}\n\n{breakdown}\n"),
        OutputFormat::Json => embodied_document(scenario, breakdown).render(),
        OutputFormat::Csv => {
            let mut out = String::from("section,component,kg_co2e\n");
            embodied_csv_rows(breakdown, &mut out);
            out
        }
    }
}

/// Renders a `tdc run` result for a full life-cycle evaluation.
#[must_use]
pub fn render_lifecycle(scenario: &str, report: &LifecycleReport, format: OutputFormat) -> String {
    match format {
        OutputFormat::Table => format!("scenario: {scenario}\n\n{report}\n"),
        OutputFormat::Json => lifecycle_document(scenario, report).render(),
        OutputFormat::Csv => {
            let mut out = String::from("section,component,kg_co2e\n");
            embodied_csv_rows(&report.embodied, &mut out);
            out.push_str(&format!(
                "operational,total,{}\n",
                kg(report.operational.carbon)
            ));
            out.push_str(&format!("lifecycle,total,{}\n", kg(report.total())));
            out
        }
    }
}

/// Renders ranked sweep entries. Identical entries render identical
/// bytes, whatever executor produced them.
#[must_use]
pub fn render_sweep(scenario: &str, entries: &[SweepEntry], format: OutputFormat) -> String {
    match format {
        OutputFormat::Table => {
            let mut table = TextTable::new(vec![
                "rank",
                "label",
                "dies",
                "viable",
                "embodied kg",
                "operational kg",
                "total kg",
            ]);
            for (rank, e) in entries.iter().enumerate() {
                table.push_row(vec![
                    (rank + 1).to_string(),
                    e.label.clone(),
                    e.design.dies().len().to_string(),
                    if e.is_viable() { "yes" } else { "NO" }.to_owned(),
                    kg(e.report.embodied.total()),
                    kg(e.report.operational.carbon),
                    kg(e.report.total()),
                ]);
            }
            format!("scenario: {scenario}\n\n{}", table.render())
        }
        OutputFormat::Json => sweep_document(scenario, entries).render(),
        OutputFormat::Csv => {
            let mut out = String::from(
                "rank,label,node_nm,technology,dies,viable,embodied_kg,operational_kg,total_kg\n",
            );
            for (rank, e) in entries.iter().enumerate() {
                out.push_str(&format!(
                    "{},{},{},{},{},{},{},{},{}\n",
                    rank + 1,
                    csv_field(&e.label),
                    e.node.nanometers(),
                    tech_label(e.technology),
                    e.design.dies().len(),
                    e.is_viable(),
                    kg(e.report.embodied.total()),
                    kg(e.report.operational.carbon),
                    kg(e.report.total()),
                ));
            }
            out
        }
    }
}

/// Renders a sensitivity (tornado) report.
#[must_use]
pub fn render_sensitivity(
    scenario: &str,
    entries: &[SensitivityEntry],
    format: OutputFormat,
) -> String {
    match format {
        OutputFormat::Table => {
            let mut table = TextTable::new(vec![
                "knob", "low kg", "base kg", "high kg", "swing kg", "swing %",
            ]);
            for e in entries {
                table.push_row(vec![
                    e.knob.clone(),
                    kg(e.low),
                    kg(e.base),
                    kg(e.high),
                    kg(e.swing()),
                    format!("{:.2}", e.relative_swing() * 100.0),
                ]);
            }
            format!("scenario: {scenario}\n\n{}", table.render())
        }
        OutputFormat::Json => sensitivity_document(scenario, entries).render(),
        OutputFormat::Csv => {
            let mut out = String::from("knob,low_kg,base_kg,high_kg,swing_kg,relative_swing\n");
            for e in entries {
                out.push_str(&format!(
                    "{},{},{},{},{},{:.6}\n",
                    csv_field(&e.knob),
                    kg(e.low),
                    kg(e.base),
                    kg(e.high),
                    kg(e.swing()),
                    e.relative_swing(),
                ));
            }
            out
        }
    }
}

/// Renders a session [`EvalResponse`] exactly as the corresponding
/// single-shot command would — `tdc batch` concatenates these, and the
/// byte-identity guarantee against fresh-process `tdc run`/`tdc sweep`
/// output rests on the renderers being shared, not re-implemented.
#[must_use]
pub fn render_response(scenario: &str, response: &EvalResponse, format: OutputFormat) -> String {
    match response {
        EvalResponse::Embodied(b) => render_embodied(scenario, b, format),
        EvalResponse::Lifecycle(r) => render_lifecycle(scenario, r, format),
        EvalResponse::Sweep(r) => render_sweep(scenario, r.entries(), format),
        EvalResponse::Sensitivity(entries) => render_sensitivity(scenario, entries, format),
    }
}

/// The JSON document of a session [`EvalResponse`] (what a `tdc
/// serve` response embeds under `"report"`), identical to the
/// `--format json` document of the corresponding command.
#[must_use]
pub fn response_document(scenario: &str, response: &EvalResponse) -> JsonValue {
    match response {
        EvalResponse::Embodied(b) => embodied_document(scenario, b),
        EvalResponse::Lifecycle(r) => lifecycle_document(scenario, r),
        EvalResponse::Sweep(r) => sweep_document(scenario, r.entries()),
        EvalResponse::Sensitivity(entries) => sensitivity_document(scenario, entries),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdc_core::sweep::DesignSweep;
    use tdc_core::{CarbonModel, ChipDesign, DieSpec, ModelContext, Workload};
    use tdc_technode::ProcessNode;
    use tdc_units::{Throughput, TimeSpan};

    fn sample_entries() -> Vec<SweepEntry> {
        let model = CarbonModel::new(ModelContext::default());
        let workload = Workload::fixed(
            "app",
            Throughput::from_tops(100.0),
            TimeSpan::from_hours(10_000.0),
        );
        DesignSweep::new(8.0e9)
            .nodes(vec![ProcessNode::N7])
            .run(&model, &workload)
            .unwrap()
    }

    #[test]
    fn all_formats_render_sweeps() {
        let entries = sample_entries();
        let table = render_sweep("s", &entries, OutputFormat::Table);
        assert!(table.contains("rank") && table.contains("7 nm/2D"));
        let json = render_sweep("s", &entries, OutputFormat::Json);
        let parsed = JsonValue::parse(&json).unwrap();
        assert_eq!(
            parsed.get("entries").unwrap().as_array().unwrap().len(),
            entries.len()
        );
        let csv = render_sweep("s", &entries, OutputFormat::Csv);
        assert_eq!(csv.lines().count(), entries.len() + 1);
        assert!(csv.starts_with("rank,label,"));
    }

    #[test]
    fn lifecycle_formats_agree_on_total() {
        let model = CarbonModel::new(ModelContext::default());
        let design = ChipDesign::monolithic_2d(
            DieSpec::builder("d", ProcessNode::N7)
                .gate_count(5.0e9)
                .build()
                .unwrap(),
        );
        let workload = Workload::fixed(
            "app",
            Throughput::from_tops(100.0),
            TimeSpan::from_hours(10_000.0),
        );
        let report = model.lifecycle(&design, &workload).unwrap();
        let json = render_lifecycle("s", &report, OutputFormat::Json);
        let parsed = JsonValue::parse(&json).unwrap();
        let total = parsed.get("total_kg").unwrap().as_f64().unwrap();
        assert!((total - report.total().kg()).abs() < 1e-9);
        let csv = render_lifecycle("s", &report, OutputFormat::Csv);
        assert!(csv.contains("lifecycle,total,"));
        let table = render_lifecycle("s", &report, OutputFormat::Table);
        assert!(table.contains("LIFECYCLE"));
    }

    #[test]
    fn embodied_only_renders() {
        let model = CarbonModel::new(ModelContext::default());
        let design = ChipDesign::monolithic_2d(
            DieSpec::builder("d", ProcessNode::N7)
                .gate_count(5.0e9)
                .build()
                .unwrap(),
        );
        let b = model.embodied(&design).unwrap();
        for fmt in [OutputFormat::Table, OutputFormat::Json, OutputFormat::Csv] {
            let out = render_embodied("s", &b, fmt);
            assert!(!out.is_empty());
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        let entries = sample_entries();
        for fmt in [OutputFormat::Table, OutputFormat::Json, OutputFormat::Csv] {
            assert_eq!(
                render_sweep("s", &entries, fmt),
                render_sweep("s", &entries, fmt)
            );
        }
    }

    #[test]
    fn csv_quoting() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("a\"b"), "\"a\"\"b\"");
    }

    #[test]
    fn format_tokens() {
        assert_eq!(OutputFormat::from_token("JSON"), Some(OutputFormat::Json));
        assert_eq!(OutputFormat::from_token("table"), Some(OutputFormat::Table));
        assert_eq!(OutputFormat::from_token("csv"), Some(OutputFormat::Csv));
        assert_eq!(OutputFormat::from_token("xml"), None);
    }
}
