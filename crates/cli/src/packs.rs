//! The `tdc packs` subcommand: inspect the model registry.
//!
//! * `tdc packs` — list every registered model (grid regions, nodes,
//!   technologies, yield/power models, presets) with its aliases,
//!   provenance (built-in vs. pack file), and description;
//! * `tdc packs <pack.json>...` — the same listing after loading the
//!   given technology packs, so pack-defined entries show up with
//!   their pack's name as the source;
//! * `tdc packs check <pack.json>...` — validate pack files (JSON
//!   shape, parameter names, derating expressions, name collisions)
//!   without evaluating anything; errors carry the file path and,
//!   for parse failures, the line/column.

use crate::json::JsonValue;
use crate::report::OutputFormat;
use crate::table::TextTable;
use std::fmt::Write as _;
use std::path::Path;
use tdc_registry::Registry;

/// CSV-quotes a field when needed (commas, quotes, newlines).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Renders the registry listing (every unshadowed entry, in
/// registration order) in the requested format.
#[must_use]
pub fn render_registry(registry: &Registry, format: OutputFormat) -> String {
    let entries = registry.list(None);
    match format {
        OutputFormat::Table => {
            let mut table =
                TextTable::new(vec!["kind", "name", "aliases", "source", "description"]);
            for meta in &entries {
                table.push_row(vec![
                    meta.kind.label().to_owned(),
                    meta.name.clone(),
                    meta.aliases.join(", "),
                    meta.provenance.to_string(),
                    meta.description.clone(),
                ]);
            }
            format!("{}models: {}\n", table.render(), entries.len())
        }
        OutputFormat::Json => {
            let models: Vec<JsonValue> = entries
                .iter()
                .map(|meta| {
                    JsonValue::Object(vec![
                        (
                            "kind".to_owned(),
                            JsonValue::String(meta.kind.label().to_owned()),
                        ),
                        ("name".to_owned(), JsonValue::String(meta.name.clone())),
                        (
                            "aliases".to_owned(),
                            JsonValue::Array(
                                meta.aliases
                                    .iter()
                                    .map(|a| JsonValue::String(a.clone()))
                                    .collect(),
                            ),
                        ),
                        (
                            "source".to_owned(),
                            JsonValue::String(meta.provenance.to_string()),
                        ),
                        (
                            "description".to_owned(),
                            JsonValue::String(meta.description.clone()),
                        ),
                    ])
                })
                .collect();
            JsonValue::Object(vec![("models".to_owned(), JsonValue::Array(models))]).render()
        }
        OutputFormat::Csv => {
            let mut out = String::from("kind,name,aliases,source,description\n");
            for meta in &entries {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{}",
                    meta.kind.label(),
                    csv_field(&meta.name),
                    csv_field(&meta.aliases.join(" ")),
                    csv_field(&meta.provenance.to_string()),
                    csv_field(&meta.description),
                );
            }
            out
        }
    }
}

/// `tdc packs [files...]`: builds a registry from the built-in
/// catalogs plus the given pack files and renders the listing.
///
/// # Errors
///
/// Fails when a pack does not load; the message names the file.
pub fn list_models(files: &[String], format: OutputFormat) -> Result<String, String> {
    let mut registry = Registry::with_builtins();
    for file in files {
        registry
            .load_pack(Path::new(file))
            .map_err(|e| e.to_string())?;
    }
    Ok(render_registry(&registry, format))
}

/// `tdc packs check <files...>`: validates each pack file against the
/// built-in registry without evaluating anything, reporting one line
/// per file.
///
/// # Errors
///
/// Fails (after checking every file) when any file is invalid.
pub fn check_packs(files: &[String]) -> Result<String, String> {
    if files.is_empty() {
        return Err("`tdc packs check` needs at least one pack file".to_owned());
    }
    let mut out = String::new();
    let mut failures = 0usize;
    for file in files {
        match Registry::validate_pack(Path::new(file)) {
            Ok(summary) => {
                let _ = writeln!(
                    out,
                    "ok {file}: pack `{}` ({} node{}, {} technolog{})",
                    summary.name,
                    summary.nodes.len(),
                    if summary.nodes.len() == 1 { "" } else { "s" },
                    summary.technologies.len(),
                    if summary.technologies.len() == 1 {
                        "y"
                    } else {
                        "ies"
                    },
                );
            }
            Err(e) => {
                failures += 1;
                let _ = writeln!(out, "error {e}");
            }
        }
    }
    if failures == 0 {
        Ok(out)
    } else {
        // The per-file lines still reach stdout via the error path's
        // caller printing them; simplest is to return them as the
        // error message so the exit code is non-zero.
        Err(format!(
            "{out}{failures} of {} pack file{} failed validation",
            files.len(),
            if files.len() == 1 { "" } else { "s" },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing_covers_every_kind_and_counts_models() {
        let registry = Registry::with_builtins();
        let out = render_registry(&registry, OutputFormat::Table);
        for fragment in [
            "| grid ",
            "| node ",
            "| technology ",
            "| yield ",
            "| power ",
            "| design ",
            "| workload ",
            "built-in",
        ] {
            assert!(out.contains(fragment), "missing {fragment}:\n{out}");
        }
        let count = registry.list(None).len();
        assert!(out.ends_with(&format!("models: {count}\n")), "{out}");
    }

    #[test]
    fn json_listing_parses_back() {
        let registry = Registry::with_builtins();
        let out = render_registry(&registry, OutputFormat::Json);
        let doc = JsonValue::parse(&out).unwrap();
        let models = doc.get("models").and_then(JsonValue::as_array).unwrap();
        assert_eq!(models.len(), registry.list(None).len());
        assert!(models.iter().all(|m| m.get("kind").is_some()
            && m.get("name").is_some()
            && m.get("source").is_some()));
    }

    #[test]
    fn csv_listing_has_header_and_rows() {
        let out = render_registry(&Registry::with_builtins(), OutputFormat::Csv);
        let mut lines = out.lines();
        assert_eq!(lines.next(), Some("kind,name,aliases,source,description"));
        assert!(lines.next().is_some());
    }

    #[test]
    fn check_requires_files_and_reports_missing_ones() {
        assert!(check_packs(&[]).is_err());
        let err = check_packs(&["/no/such/pack.json".to_owned()]).unwrap_err();
        assert!(err.contains("/no/such/pack.json"), "{err}");
        assert!(err.contains("1 of 1 pack file failed validation"), "{err}");
    }
}
