//! Multi-client `tdc serve --listen` behaviour: determinism of
//! concurrent TCP clients against fresh single-process replays,
//! cross-client warmth through the shared session, and fault
//! injection — a vanished client, a malformed frame mid-stream, and
//! shutdown with frames still in flight must all leave the server
//! serving everyone else, answering with path-named errors, never a
//! panic.

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;
use tdc_cli::serve::{serve, serve_listener, ListenSummary};
use tdc_cli::JsonValue;
use tdc_core::service::ScenarioSession;

/// xorshift64 — deterministic randomized streams without a `rand`
/// dependency.
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// The shared-geometry scenario pool: 2 die stacks × 3 grid regions ×
/// 2 lifetimes. Every client draws from the same pool, so embodied
/// chains warm across clients.
fn scenario_pool() -> Vec<String> {
    let mut pool = Vec::new();
    for gates in [8.0e9, 13.0e9] {
        for region in ["world", "france", "coal"] {
            for hours in [4745.0, 9490.0] {
                pool.push(format!(
                    "{{\"design\": {{\"dies\": [{{\"name\": \"soc\", \"node_nm\": 7, \
                     \"gate_count\": {gates:.1}, \"efficiency_tops_per_watt\": 2.74, \
                     \"compute_share\": 1}}]}}, \
                     \"workload\": {{\"name\": \"inference\", \"throughput_tops\": 254, \
                     \"active_hours\": {hours:.1}, \"average_utilization\": 0.15}}, \
                     \"context\": {{\"use_region\": \"{region}\"}}}}"
                ));
            }
        }
    }
    pool
}

fn random_stream(seed: u64, frames: usize) -> Vec<String> {
    let pool = scenario_pool();
    let mut rng = XorShift64::new(seed);
    let mut out: Vec<String> = (0..frames)
        .map(|i| {
            let scenario = &pool[usize::try_from(rng.next() % pool.len() as u64).unwrap()];
            format!(
                "{{\"id\": {}, \"command\": \"run\", \"scenario\": {scenario}}}",
                i + 1
            )
        })
        .collect();
    out.push(format!(
        "{{\"id\": {}, \"command\": \"shutdown\"}}",
        frames + 1
    ));
    out
}

/// What a fresh single-process `tdc serve` answers for this stream.
fn fresh_replay(stream_lines: &[String]) -> Vec<String> {
    let mut input = stream_lines.join("\n");
    input.push('\n');
    let mut stdout = Vec::new();
    let mut sink = Vec::new();
    serve(
        &ScenarioSession::serial(),
        input.as_bytes(),
        &mut stdout,
        &mut sink,
        1,
    )
    .expect("in-memory serve");
    String::from_utf8(stdout)
        .expect("utf8")
        .lines()
        .map(ToOwned::to_owned)
        .collect()
}

/// A line-oriented test client.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connects");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        Self {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("writes");
        self.writer.flush().expect("flushes");
    }

    /// Reads one response line; `None` on clean EOF.
    fn recv(&mut self) -> Option<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line).expect("reads") == 0 {
            return None;
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Some(line)
    }

    fn round_trip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv().expect("a response before EOF")
    }
}

/// Runs `body` against a listening server sharing `session`; `body`
/// must stop the server (server-scope shutdown) before returning.
/// Returns the body's value, the listener summary, and its stderr.
fn with_server<T>(
    session: &ScenarioSession,
    max_inflight: usize,
    body: impl FnOnce(SocketAddr) -> T,
) -> (T, ListenSummary, String) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
    let addr = listener.local_addr().expect("bound address");
    std::thread::scope(|scope| {
        let server = scope.spawn(move || {
            let mut sink = Vec::new();
            let summary = serve_listener(session, listener, max_inflight, &mut sink);
            (summary, sink)
        });
        let out = body(addr);
        let (summary, sink) = server.join().expect("server thread");
        (
            out,
            summary.expect("listener exits cleanly"),
            String::from_utf8(sink).expect("utf8 stderr"),
        )
    })
}

fn stop_server(addr: SocketAddr) {
    let mut control = Client::connect(addr);
    let ack = control.round_trip("{\"id\": 0, \"command\": \"shutdown\", \"scope\": \"server\"}");
    assert!(ack.contains("\"ok\":true"), "{ack}");
}

fn ok_frame(line: &str) -> bool {
    JsonValue::parse(line)
        .ok()
        .and_then(|v| v.get("ok").cloned())
        == Some(JsonValue::Bool(true))
}

/// The headline property: N concurrent clients replaying randomized
/// shared-geometry streams get responses byte-identical to fresh
/// single-process replays, and the shared session shows cross-client
/// warm hits.
#[test]
fn concurrent_tcp_clients_equal_fresh_serial_replays() {
    const CLIENTS: u64 = 4;
    const FRAMES: usize = 10;
    let streams: Vec<Vec<String>> = (0..CLIENTS)
        .map(|c| random_stream(0xc0ffee ^ (c + 1).wrapping_mul(0x9E37_79B9), FRAMES))
        .collect();
    let expected: Vec<Vec<String>> = streams.iter().map(|s| fresh_replay(s)).collect();

    let session = ScenarioSession::serial();
    let (responses, summary, stderr) = with_server(&session, 1, |addr| {
        let responses = std::thread::scope(|scope| {
            let handles: Vec<_> = streams
                .iter()
                .map(|stream_lines| {
                    scope.spawn(move || {
                        let mut client = Client::connect(addr);
                        stream_lines
                            .iter()
                            .map(|line| client.round_trip(line))
                            .collect::<Vec<String>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect::<Vec<_>>()
        });
        stop_server(addr);
        responses
    });

    for (got, want) in responses.iter().zip(&expected) {
        assert_eq!(got, want, "concurrency or shared warmth leaked into bytes");
    }
    assert_eq!(summary.connections, CLIENTS + 1, "clients + control");
    assert_eq!(summary.errors, 0);
    assert_eq!(summary.frames, CLIENTS * (FRAMES as u64 + 1) + 1);

    // Cross-client warmth: the final stats line reports client_cross
    // hits, and the session agrees.
    let stats = session.stats();
    assert!(
        stats.stages.client_hits() > 0,
        "no cross-client reuse on shared-geometry streams: {stats:?}"
    );
    assert_eq!(stats.clients, CLIENTS + 1);
    let final_line = stderr
        .lines()
        .find(|l| l.starts_with("listen connections="))
        .expect("aggregate stats line");
    let client_cross: u64 = final_line
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("client_cross="))
        .expect("client_cross= token")
        .parse()
        .expect("integer");
    assert_eq!(client_cross, stats.stages.client_hits());
}

/// Strict shape check for one per-connection stats line:
/// `connection client=<n> frames=<n> errors=<n>`, nothing else.
fn parse_connection_line(line: &str) -> Option<(u64, u64, u64)> {
    let rest = line.strip_prefix("connection client=")?;
    let (client, rest) = rest.split_once(" frames=")?;
    let (frames, errors) = rest.split_once(" errors=")?;
    Some((
        client.parse().ok()?,
        frames.parse().ok()?,
        errors.parse().ok()?,
    ))
}

/// Regression: with many connections tearing down at once, the
/// per-connection stats lines used to be written in fragments, so two
/// finishing threads could interleave mid-line. Each line is now
/// preformatted and written under a single lock acquisition — every
/// stderr line must parse as exactly one well-formed record.
#[test]
fn concurrent_connection_stats_lines_never_tear() {
    const CLIENTS: u64 = 8;
    let session = ScenarioSession::serial();
    let ((), summary, stderr) = with_server(&session, 1, |addr| {
        std::thread::scope(|scope| {
            for c in 0..CLIENTS {
                scope.spawn(move || {
                    let stream_lines = random_stream(0xbeef ^ (c + 1), 2);
                    let mut client = Client::connect(addr);
                    for line in &stream_lines {
                        assert!(ok_frame(&client.round_trip(line)), "client {c}");
                    }
                    // All streams end with a connection shutdown, so
                    // the 8 teardowns (and their stats lines) race.
                });
            }
        });
        stop_server(addr);
    });

    let lines: Vec<&str> = stderr.lines().collect();
    let (aggregate, connection_lines) = lines.split_last().expect("stderr has lines");
    assert!(
        aggregate.starts_with("listen connections="),
        "last line must be the aggregate, got: {aggregate}"
    );
    let mut seen_clients = Vec::new();
    for line in connection_lines {
        let (client, _frames, errors) = parse_connection_line(line)
            .unwrap_or_else(|| panic!("torn or malformed stats line: {line:?}"));
        assert_eq!(errors, 0, "{line}");
        seen_clients.push(client);
    }
    assert_eq!(
        seen_clients.len() as u64,
        summary.connections,
        "one stats line per connection"
    );
    seen_clients.sort_unstable();
    seen_clients.dedup();
    assert_eq!(
        seen_clients.len() as u64,
        summary.connections,
        "client ids must be unique across stats lines"
    );
}

/// A client that vanishes mid-request (half a frame, no newline, then
/// RST/EOF) must not take the server or its other clients down.
#[test]
fn client_disconnect_mid_request_leaves_other_clients_served() {
    let session = ScenarioSession::serial();
    let ((), summary, _stderr) = with_server(&session, 1, |addr| {
        let survivor_frame = &random_stream(7, 1)[0];
        let mut survivor = Client::connect(addr);
        assert!(ok_frame(&survivor.round_trip(survivor_frame)));

        // The casualty: half a run frame, then gone.
        let mut casualty = TcpStream::connect(addr).expect("connects");
        casualty
            .write_all(b"{\"id\": 9, \"command\": \"run\", \"scenario\": {\"des")
            .expect("partial write");
        casualty.flush().expect("flushes");
        drop(casualty);

        // The survivor keeps getting served after the disconnect.
        std::thread::sleep(Duration::from_millis(120));
        assert!(ok_frame(&survivor.round_trip(survivor_frame)));
        assert!(ok_frame(
            &survivor.round_trip("{\"id\": 3, \"command\": \"shutdown\"}")
        ));
        assert_eq!(survivor.recv(), None, "clean close after shutdown");
        stop_server(addr);
    });
    assert_eq!(summary.connections, 3, "survivor + casualty + control");
}

/// A malformed frame mid-stream answers a path-named (or parse) error
/// on its line position and the same connection keeps serving.
#[test]
fn malformed_frames_mid_stream_answer_errors_and_keep_the_connection() {
    let session = ScenarioSession::serial();
    let ((), summary, _stderr) = with_server(&session, 1, |addr| {
        let good = &random_stream(11, 1)[0];
        let mut client = Client::connect(addr);
        assert!(ok_frame(&client.round_trip(good)));

        // Broken JSON: answered, not fatal.
        let broken = client.round_trip("{\"id\": 2, \"command\": ");
        assert!(broken.contains("\"ok\":false"), "{broken}");

        // Schema problems name the offending path.
        let no_command = client.round_trip("{\"id\": 3}");
        assert!(no_command.contains("\"path\":\"command\""), "{no_command}");
        let bad_scope =
            client.round_trip("{\"id\": 4, \"command\": \"shutdown\", \"scope\": \"galaxy\"}");
        assert!(bad_scope.contains("\"path\":\"scope\""), "{bad_scope}");
        let no_scenario = client.round_trip("{\"id\": 5, \"command\": \"sweep\"}");
        assert!(
            no_scenario.contains("\"path\":\"scenario\""),
            "{no_scenario}"
        );

        // The connection is still perfectly healthy.
        assert!(ok_frame(&client.round_trip(good)));
        assert!(ok_frame(
            &client.round_trip("{\"id\": 7, \"command\": \"shutdown\"}")
        ));
        stop_server(addr);
    });
    assert_eq!(summary.errors, 4, "exactly the four injected bad frames");
}

/// Server-scope shutdown with another client's frames still in flight:
/// the in-flight frames are answered before that connection closes —
/// drain is graceful, not abortive.
#[test]
fn server_shutdown_drains_inflight_frames_on_other_connections() {
    let session = ScenarioSession::serial();
    let ((), summary, _stderr) = with_server(&session, 1, |addr| {
        let stream_lines = random_stream(23, 3);
        let mut pipelined = Client::connect(addr);
        // Write three eval frames without reading a single response.
        for line in &stream_lines[..3] {
            pipelined.send(line);
        }
        std::thread::sleep(Duration::from_millis(50));
        stop_server(addr);
        // Every in-flight frame was answered before the close.
        for _ in 0..3 {
            let response = pipelined.recv().expect("drained response");
            assert!(ok_frame(&response), "{response}");
        }
        assert_eq!(pipelined.recv(), None, "then the connection closes");
    });
    assert_eq!(summary.connections, 2);
    assert_eq!(summary.frames, 4, "3 drained evals + the control shutdown");
}

/// A connection-scope shutdown closes only its own connection; the
/// listener and other clients keep serving, and reorder-buffered
/// concurrency (`--max-inflight > 1`) preserves response order.
#[test]
fn connection_shutdown_is_local_and_inflight_responses_stay_ordered() {
    let session = ScenarioSession::serial();
    let ((), _summary, _stderr) = with_server(&session, 4, |addr| {
        let mut leaver = Client::connect(addr);
        assert!(ok_frame(
            &leaver.round_trip("{\"id\": 1, \"command\": \"shutdown\"}")
        ));
        assert_eq!(leaver.recv(), None);

        // A second client pipelines frames through the 4-deep window;
        // responses must come back in input order.
        let stream_lines = random_stream(31, 6);
        let mut stayer = Client::connect(addr);
        for line in &stream_lines {
            stayer.send(line);
        }
        for (i, _) in stream_lines.iter().enumerate() {
            let response = stayer.recv().expect("a response per frame");
            let id = JsonValue::parse(&response)
                .expect("frame parses")
                .get("id")
                .expect("id echoed")
                .as_f64()
                .expect("numeric id");
            #[allow(clippy::cast_precision_loss)]
            let expected_id = (i + 1) as f64;
            assert!(
                (id - expected_id).abs() < f64::EPSILON,
                "response order broke: got id {id}, expected {expected_id}"
            );
        }
        assert_eq!(stayer.recv(), None, "stream ended with shutdown");
        stop_server(addr);
    });
    let stats = session.stats();
    assert_eq!(stats.clients, 3, "leaver + stayer + control");
}
