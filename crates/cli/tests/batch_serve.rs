//! Byte-identity of the batch/serve surfaces against fresh-process
//! evaluations, plus the golden `tdc serve` transcript.
//!
//! `tdc batch`'s contract is that warmth never shows in the output:
//! its stdout must equal the concatenation of running each scenario
//! file alone (what CI diffs with the real binary, re-checked here
//! in-process). `tdc serve`'s contract is the JSONL protocol itself,
//! pinned by a golden transcript that includes schema errors and one
//! malformed request.

use std::io::BufRead as _;
use std::path::{Path, PathBuf};
use tdc_cli::batch::{expand_paths, run_batch};
use tdc_cli::report::{
    render_embodied, render_explore, render_lifecycle, render_response, render_sweep, OutputFormat,
};
use tdc_cli::serve::serve;
use tdc_cli::{JsonValue, RequestKind, Scenario};
use tdc_core::service::ScenarioSession;
use tdc_core::sweep::SweepExecutor;
use tdc_core::CarbonModel;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

fn scenario_files() -> Vec<PathBuf> {
    expand_paths(&[repo_root().join("scenarios").to_string_lossy().into_owned()])
        .expect("scenarios/ expands")
}

/// What `tdc run`/`tdc sweep` print to stdout for one file, evaluated
/// completely fresh (no shared cache anywhere).
fn fresh_process_output(file: &Path, format: OutputFormat) -> String {
    let text = std::fs::read_to_string(file).expect("scenario reads");
    let scenario = Scenario::parse(&text)
        .expect("scenario parses")
        .with_base_dir(file.parent());
    let model = CarbonModel::new(scenario.build_context().expect("context builds"));
    match scenario.infer_request_kind() {
        RequestKind::Sweep => {
            let workload = scenario
                .build_workload()
                .expect("workload builds")
                .expect("sweep scenarios carry workloads");
            let plan = scenario
                .build_sweep()
                .expect("sweep builds")
                .plan()
                .expect("plan builds");
            let result = SweepExecutor::serial()
                .execute(&model, &plan, &workload)
                .expect("sweep evaluates");
            render_sweep(&scenario.name, result.entries(), format)
        }
        RequestKind::Explore => {
            let workload = scenario
                .build_workload()
                .expect("workload builds")
                .expect("explore scenarios carry workloads");
            let plan = scenario
                .build_sweep()
                .expect("sweep builds")
                .plan()
                .expect("plan builds");
            let context = scenario.build_context().expect("context builds");
            let result = tdc_core::explore::run(
                &SweepExecutor::serial(),
                &context,
                &plan,
                &workload,
                &scenario.build_explore().expect("explore builds"),
            )
            .expect("explore evaluates");
            render_explore(&scenario.name, result.report(), format)
        }
        _ => {
            let design = scenario.build_design().expect("design builds");
            match scenario.build_workload().expect("workload builds") {
                Some(workload) => render_lifecycle(
                    &scenario.name,
                    &model.lifecycle(&design, &workload).expect("evaluates"),
                    format,
                ),
                None => render_embodied(
                    &scenario.name,
                    &model.embodied(&design).expect("evaluates"),
                    format,
                ),
            }
        }
    }
}

#[test]
fn batch_stdout_is_byte_identical_to_fresh_process_runs() {
    let files = scenario_files();
    assert!(files.len() >= 5, "the checked-in scenario set shrank");
    for format in [OutputFormat::Table, OutputFormat::Json, OutputFormat::Csv] {
        let mut expected = String::new();
        for file in &files {
            expected.push_str(&fresh_process_output(file, format));
        }
        let session = ScenarioSession::serial();
        let mut stdout = Vec::new();
        let mut stderr = Vec::new();
        let summary =
            run_batch(&session, &files, format, &mut stdout, &mut stderr).expect("batch runs");
        assert!(summary.all_ok(), "all checked-in scenarios evaluate");
        assert_eq!(
            String::from_utf8(stdout).expect("utf8 output"),
            expected,
            "warm batch output diverged from fresh runs ({format:?})"
        );
    }
}

#[test]
fn batch_over_checked_in_scenarios_reports_cross_request_warmth() {
    let files = scenario_files();
    let session = ScenarioSession::serial();
    let mut stdout = Vec::new();
    let mut stderr = Vec::new();
    run_batch(
        &session,
        &files,
        OutputFormat::Csv,
        &mut stdout,
        &mut stderr,
    )
    .expect("batch runs");
    let log = String::from_utf8(stderr).expect("utf8 stderr");
    let aggregate = log
        .lines()
        .find(|l| l.starts_with("batch files="))
        .expect("aggregate summary line");
    // The acceptance criterion: scenarios sharing design geometry
    // answer from artifacts earlier files computed. `cross` is an
    // integer token, so no float formatting is involved.
    let cross: u64 = aggregate
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("cross="))
        .expect("cross= token")
        .parse()
        .expect("integer cross counter");
    assert!(cross > 0, "no cross-request reuse in: {aggregate}");
    assert!(aggregate.contains("failed=0"), "{aggregate}");
    // Per-file lines carry the same stable key=value shape.
    assert!(log
        .lines()
        .any(|l| l.starts_with("batch[1/") && l.contains(" kind=")));
}

#[test]
fn batch_failures_are_reported_and_do_not_stop_the_batch() {
    let dir = std::env::temp_dir().join("tdc-batch-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let good = dir.join("a_good.json");
    let bad = dir.join("b_bad.json");
    std::fs::write(&good, r#"{"design": {"preset": "epyc-7452"}}"#).expect("writes");
    std::fs::write(&bad, r#"{"design": {"preset": "warp-core"}}"#).expect("writes");
    let session = ScenarioSession::serial();
    let mut stdout = Vec::new();
    let mut stderr = Vec::new();
    let summary = run_batch(
        &session,
        &[good, bad],
        OutputFormat::Csv,
        &mut stdout,
        &mut stderr,
    )
    .expect("batch runs");
    assert_eq!(summary.ok, 1);
    assert_eq!(summary.failed, 1);
    let log = String::from_utf8(stderr).expect("utf8 stderr");
    assert!(log.contains("status=error"), "{log}");
    assert!(log.contains("warp-core"), "{log}");
    // The good file still produced its full report.
    assert!(String::from_utf8(stdout)
        .expect("utf8")
        .starts_with("section,component,kg_co2e"));
}

#[test]
fn expand_paths_sorts_directory_entries() {
    let files = scenario_files();
    let names: Vec<String> = files
        .iter()
        .map(|f| f.file_name().unwrap().to_string_lossy().into_owned())
        .collect();
    let mut sorted = names.clone();
    sorted.sort();
    assert_eq!(names, sorted, "batch order must be deterministic");
}

#[test]
fn serve_session_matches_the_golden_transcript() {
    let data = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("data");
    let input = std::fs::read_to_string(data.join("serve_session_input.jsonl")).expect("input");
    let expected =
        std::fs::read_to_string(data.join("serve_session_expected.jsonl")).expect("golden");
    let session = ScenarioSession::serial();
    let mut stdout = Vec::new();
    let mut stderr = Vec::new();
    let summary = serve(&session, input.as_bytes(), &mut stdout, &mut stderr, 1).expect("serves");
    assert_eq!(
        String::from_utf8(stdout).expect("utf8"),
        expected,
        "serve responses diverged from the golden transcript"
    );
    // The scripted session includes schema errors and one malformed
    // line; none of them kill the server.
    assert_eq!(summary.frames, 10);
    assert_eq!(summary.errors, 4);
}

#[test]
fn serve_warmth_never_changes_response_bytes() {
    // The golden input evaluates the same stack twice (ids 2 and 7);
    // the second answer comes from warm artifacts but must embed the
    // identical report document.
    let data = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("data");
    let expected =
        std::fs::read_to_string(data.join("serve_session_expected.jsonl")).expect("golden");
    let report_of = |id: &str| {
        let line = expected
            .lines()
            .find(|l| l.starts_with(&format!("{{\"id\":{id},")))
            .expect("frame present");
        let frame = JsonValue::parse(line).expect("frame parses");
        frame.get("report").expect("report present").render()
    };
    assert_eq!(report_of("2"), report_of("7"));
}

#[test]
fn serve_orders_responses_under_concurrency() {
    let mut input = String::new();
    for id in 1..=6 {
        let preset = if id % 2 == 0 { "epyc-7452" } else { "hbm4-d2w" };
        input.push_str(&format!(
            "{{\"id\": {id}, \"command\": \"run\", \"scenario\": {{\"design\": {{\"preset\": \"{preset}\"}}}}}}\n"
        ));
    }
    input.push_str("{\"id\": 7, \"command\": \"shutdown\"}\n");
    let session = ScenarioSession::new(1);
    let mut stdout = Vec::new();
    let mut stderr = Vec::new();
    serve(&session, input.as_bytes(), &mut stdout, &mut stderr, 4).expect("serves");
    let ids: Vec<f64> = stdout
        .lines()
        .map(|l| {
            JsonValue::parse(&l.expect("line"))
                .expect("frame parses")
                .get("id")
                .expect("id echoed")
                .as_f64()
                .expect("numeric id")
        })
        .collect();
    assert_eq!(ids, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
}

#[test]
fn serve_responses_match_single_shot_json_documents() {
    // A serve response's `report` is exactly the `--format json`
    // document of the corresponding command (modulo pretty-printing).
    let scenario_text = r#"{"name": "parity", "design": {"preset": "epyc-7452"}}"#;
    let scenario = Scenario::parse(scenario_text).expect("parses");
    let request = scenario
        .build_request(RequestKind::Run)
        .expect("request builds");
    let session = ScenarioSession::serial();
    let evaluated = session.evaluate(&request).expect("evaluates");
    let single_shot = render_response(&scenario.name, &evaluated.response, OutputFormat::Json);

    let input = format!("{{\"id\": 1, \"command\": \"run\", \"scenario\": {scenario_text}}}\n");
    let mut stdout = Vec::new();
    let mut stderr = Vec::new();
    serve(
        &ScenarioSession::serial(),
        input.as_bytes(),
        &mut stdout,
        &mut stderr,
        1,
    )
    .expect("serves");
    let frame =
        JsonValue::parse(std::str::from_utf8(&stdout).expect("utf8").trim()).expect("frame parses");
    assert_eq!(
        frame.get("report").expect("report present").render(),
        single_shot,
    );
}
