//! Byte-pins the `--profile` JSON document for a deterministic run.
//!
//! A [`tdc_obs::MockClock`] replaces wall time (every reading advances
//! by exactly 1 µs) and the sweep runs serially, so the span tree, all
//! timestamps, and every metric value are identical run after run —
//! the rendered document must match [`EXPECTED`] byte for byte. Any
//! schema drift (key order, indentation, a renamed metric) fails here
//! before it reaches a consumer.
//!
//! This file deliberately contains a single `#[test]`: the recorder,
//! clock, and metric registry are process-global, so a sibling test
//! would race the measurement.

use std::sync::Arc;
use tdc_core::sweep::{DesignSweep, SweepExecutor};
use tdc_core::{CarbonModel, ModelContext, Workload};
use tdc_technode::ProcessNode;
use tdc_units::{Throughput, TimeSpan};

const EXPECTED: &str = include_str!("data/profile_golden.json");

#[test]
fn two_point_serial_sweep_profile_is_byte_stable() {
    tdc_obs::set_clock(Arc::new(tdc_obs::MockClock::new(0, 1000)));
    tdc_obs::set_enabled(true);
    tdc_obs::reset();

    // Two nodes, 2D reference only: exactly two sweep points, so the
    // tree is small enough to pin by hand.
    let plan = DesignSweep::new(17.0e9)
        .nodes(vec![ProcessNode::N7, ProcessNode::N5])
        .technologies(vec![None])
        .plan()
        .unwrap();
    assert_eq!(plan.len(), 2, "golden run must be a 2-point sweep");
    let model = CarbonModel::new(ModelContext::default());
    let workload = Workload::fixed(
        "app",
        Throughput::from_tops(254.0),
        TimeSpan::from_hours(10_000.0),
    );
    let executor = SweepExecutor::serial();
    {
        // Mirrors `cmd_sweep`: the command span wraps the execution so
        // the document has a single root.
        let _cmd = tdc_obs::span("cmd.sweep");
        executor.execute(&model, &plan, &workload).unwrap();
    }
    executor.cache().publish_obs();
    let spans = tdc_obs::take_spans();
    let rendered = tdc_cli::profile::document(&spans).render();

    // All five pipeline stages must report a timing series.
    for stage in [
        "stage.physical.ns",
        "stage.yield.ns",
        "stage.embodied.ns",
        "stage.power.ns",
        "stage.operational.ns",
    ] {
        assert!(
            rendered.contains(&format!("\"{stage}\"")),
            "profile is missing the {stage} series"
        );
    }

    if rendered != EXPECTED {
        let dump = concat!(env!("CARGO_TARGET_TMPDIR"), "/profile_actual.json");
        std::fs::write(dump, &rendered).ok();
        panic!("profile document drifted from the golden bytes; actual written to {dump}");
    }

    tdc_obs::set_enabled(false);
    tdc_obs::reset();
    tdc_obs::reset_clock();
}
