//! End-to-end coverage of the exploration surface: the `explore`
//! scenario block (schema errors included), the `tdc explore`
//! pipeline with byte-identical output across worker counts, the
//! `tdc run --baseline` Eq. 2 comparison across all four
//! [`ChoiceOutcome`] windows, and warm-session parity for `Explore`
//! service requests.

use tdc_cli::report::{render_decision, render_explore, render_response, OutputFormat};
use tdc_cli::{RequestKind, Scenario};
use tdc_core::service::{EvalResponse, ScenarioSession};
use tdc_core::sweep::SweepExecutor;
use tdc_core::{CarbonModel, ChoiceOutcome, ModelContext};

const ALL_FORMATS: [OutputFormat; 3] = [OutputFormat::Table, OutputFormat::Json, OutputFormat::Csv];

fn load(file: &str) -> Scenario {
    let path = format!("{}/../../scenarios/{file}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    Scenario::parse(&text).unwrap_or_else(|e| panic!("{file}: {e}"))
}

/// Elaborates the checked-in pareto scenario into explore inputs.
fn pareto_inputs(
    scenario: &Scenario,
) -> (
    ModelContext,
    tdc_core::sweep::SweepPlan,
    tdc_core::Workload,
    tdc_core::explore::ExploreSpec,
) {
    (
        scenario.build_context().unwrap(),
        scenario.build_sweep().unwrap().plan().unwrap(),
        scenario.build_workload().unwrap().unwrap(),
        scenario.build_explore().unwrap(),
    )
}

#[test]
fn pareto_scenario_is_an_explore_request() {
    let scenario = load("pareto_3d_vs_2d.json");
    assert!(scenario.has_explore());
    assert!(scenario.has_sweep());
    assert_eq!(scenario.infer_request_kind(), RequestKind::Explore);
    assert!(scenario.build_request(RequestKind::Explore).is_ok());
}

#[test]
fn pareto_scenario_finds_the_paper_trade_off() {
    let scenario = load("pareto_3d_vs_2d.json");
    let (ctx, plan, workload, spec) = pareto_inputs(&scenario);
    let result =
        tdc_core::explore::run(&SweepExecutor::serial(), &ctx, &plan, &workload, &spec).unwrap();
    let report = result.report();
    // The 3D stack and the planar die trade embodied vs lifecycle.
    assert_eq!(report.frontier.len(), 2);
    let labels: Vec<&str> = report
        .frontier
        .iter()
        .map(|f| f.entry.label.as_str())
        .collect();
    assert!(labels.contains(&"7 nm/2D"));
    assert!(labels.contains(&"7 nm/Micro"));
    // The bandwidth-starved 2.5D points are infeasible, not dropped.
    assert_eq!(report.infeasible, 2);
    // Eq. 2: the stack is better until its indifference point, and the
    // refinement loop localizes that same crossing.
    let micro = report
        .frontier
        .iter()
        .find(|f| f.entry.label == "7 nm/Micro")
        .unwrap();
    let decision = micro.decision.as_ref().unwrap();
    let tc = match decision.metrics.outcome {
        ChoiceOutcome::BetterUntil(t) => t,
        other => panic!("expected BetterUntil, got {other:?}"),
    };
    let refine = report.refine.as_ref().unwrap();
    assert_eq!(refine.crossings.len(), 1);
    let crossing = &refine.crossings[0];
    assert!(
        crossing.lower <= tc.years() && tc.years() <= crossing.upper,
        "Eq. 2 Tc {} outside the located crossing [{}, {}]",
        tc.years(),
        crossing.lower,
        crossing.upper
    );
    assert_eq!(crossing.below.as_deref(), Some("7 nm/Micro"));
    assert_eq!(crossing.above.as_deref(), Some("7 nm/2D"));
}

#[test]
fn explore_reports_are_byte_identical_across_worker_counts() {
    let scenario = load("pareto_3d_vs_2d.json");
    let (ctx, plan, workload, spec) = pareto_inputs(&scenario);
    let serial =
        tdc_core::explore::run(&SweepExecutor::serial(), &ctx, &plan, &workload, &spec).unwrap();
    for workers in [2, 8] {
        let parallel =
            tdc_core::explore::run(&SweepExecutor::new(workers), &ctx, &plan, &workload, &spec)
                .unwrap();
        for format in ALL_FORMATS {
            assert_eq!(
                render_explore(&scenario.name, serial.report(), format),
                render_explore(&scenario.name, parallel.report(), format),
                "{workers} workers, {format:?}"
            );
        }
    }
}

#[test]
fn explore_session_requests_match_direct_runs() {
    let scenario = load("pareto_3d_vs_2d.json");
    let (ctx, plan, workload, spec) = pareto_inputs(&scenario);
    let direct =
        tdc_core::explore::run(&SweepExecutor::serial(), &ctx, &plan, &workload, &spec).unwrap();
    let session = ScenarioSession::serial();
    let request = scenario.build_request(RequestKind::Explore).unwrap();
    // Warm the session with an unrelated request first: explore
    // responses must not depend on the store's state.
    session
        .evaluate(
            &load("av_drive.json")
                .build_request(RequestKind::Run)
                .unwrap(),
        )
        .unwrap();
    let evaluated = session.evaluate(&request).unwrap();
    match &evaluated.response {
        EvalResponse::Explore(result) => assert_eq!(result.report(), direct.report()),
        other => panic!("expected an explore response, got {}", other.kind()),
    }
    // The transport renderer goes through the same path as `tdc
    // explore` itself.
    let rendered = render_response(&scenario.name, &evaluated.response, OutputFormat::Csv);
    assert!(rendered.starts_with("rank,label,"));
    assert!(rendered.contains("better-until"));
}

#[test]
fn explore_schema_errors_name_their_paths() {
    let cases: [(&str, &str); 8] = [
        (r#"{"explore": {}}"#, "explore.objectives"),
        (
            r#"{"explore": {"objectives": ["warp"]}}"#,
            "explore.objectives[0]",
        ),
        (
            r#"{"explore": {"objectives": ["lifecycle", "lifecycle"]}}"#,
            "duplicate objective",
        ),
        (
            r#"{"explore": {"objectives": ["lifecycle","embodied","package_area","carbon_delay"]}}"#,
            "at most 3",
        ),
        (
            r#"{"explore": {"objectives": ["lifecycle"], "constraints": {"max_embodied_kg": -1}}}"#,
            "explore.constraints.max_embodied_kg",
        ),
        (
            r#"{"explore": {"objectives": ["lifecycle"], "constraints": {"oops": 1}}}"#,
            "explore.constraints.oops",
        ),
        (
            r#"{"explore": {"objectives": ["lifecycle"], "refine": {"axis": "warp", "min": 1, "max": 2}}}"#,
            "explore.refine.axis",
        ),
        (
            r#"{"explore": {"objectives": ["lifecycle"], "refine": {"axis": "lifetime_years", "min": 5, "max": 2}}}"#,
            "min < max",
        ),
    ];
    for (text, fragment) in cases {
        let err = Scenario::parse(text).unwrap_err();
        assert!(
            err.to_string().contains(fragment),
            "`{text}` should mention `{fragment}`, got: {err}"
        );
    }
}

#[test]
fn explore_without_a_sweep_block_errors_on_the_sweep_path() {
    let scenario = Scenario::parse(
        r#"{
          "workload": {"throughput_tops": 100, "active_hours": 1000},
          "explore": {"objectives": ["lifecycle"]}
        }"#,
    )
    .unwrap();
    assert_eq!(scenario.infer_request_kind(), RequestKind::Explore);
    let err = scenario.build_request(RequestKind::Explore).unwrap_err();
    assert!(err.to_string().contains("sweep"), "{err}");
}

#[test]
fn explore_constraint_allowlists_parse() {
    let scenario = Scenario::parse(
        r#"{
          "explore": {
            "objectives": ["lifecycle", "package_area"],
            "constraints": {
              "nodes_nm": [7, 5],
              "technologies": ["2d", "hybrid"],
              "require_viable": true,
              "max_package_area_mm2": 2500,
              "max_embodied_kg": 100
            },
            "baseline": "7 nm/2D"
          }
        }"#,
    )
    .unwrap();
    let spec = scenario.build_explore().unwrap();
    assert_eq!(spec.constraints.len(), 5);
    assert_eq!(spec.baseline.as_deref(), Some("7 nm/2D"));
}

// ---- Eq. 2 standalone (`tdc run --baseline`): all four windows ----

/// A single-die 2D scenario with explicit gates/efficiency, plus the
/// shared workload. Gates steer embodied carbon; efficiency steers
/// power — together they reach every [`ChoiceOutcome`] window.
fn decision_scenario(name: &str, gates: f64, efficiency: f64) -> Scenario {
    Scenario::parse(&format!(
        r#"{{
          "name": "{name}",
          "design": {{
            "dies": [{{"node_nm": 7, "gate_count": {gates:e}, "efficiency_tops_per_watt": {efficiency}}}]
          }},
          "workload": {{"throughput_tops": 100, "active_hours": 10000}}
        }}"#
    ))
    .unwrap()
}

/// Evaluates `tdc run --baseline` semantics: the baseline file's
/// design against the scenario's design, under the scenario's
/// workload and context.
fn compare(base: &Scenario, alt: &Scenario) -> (tdc_core::ComparisonReport, String) {
    let model = CarbonModel::new(alt.build_context().unwrap());
    let report = model
        .compare(
            &base.build_design().unwrap(),
            &alt.build_design().unwrap(),
            &alt.build_workload().unwrap().unwrap(),
        )
        .unwrap();
    let rendered = render_decision(&alt.name, &base.name, &report, OutputFormat::Table);
    (report, rendered)
}

#[test]
fn baseline_comparison_reaches_always_better() {
    let base = decision_scenario("base", 10.0e9, 2.0);
    let alt = decision_scenario("lean-fast", 8.0e9, 4.0);
    let (report, rendered) = compare(&base, &alt);
    assert_eq!(report.metrics.outcome, ChoiceOutcome::AlwaysBetter);
    assert!(rendered.contains("always-better"), "{rendered}");
    assert!(rendered.contains("base (baseline)"));
}

#[test]
fn baseline_comparison_reaches_never_better() {
    let base = decision_scenario("base", 10.0e9, 2.0);
    let alt = decision_scenario("bloated-slow", 12.0e9, 1.0);
    let (report, rendered) = compare(&base, &alt);
    assert_eq!(report.metrics.outcome, ChoiceOutcome::NeverBetter);
    assert!(rendered.contains("never-better"), "{rendered}");
    assert!(rendered.contains("Tc=inf"), "{rendered}");
}

#[test]
fn baseline_comparison_reaches_better_after() {
    // More embodied (more gates) but less power (better efficiency):
    // the alternative repays its premium after Tc.
    let base = decision_scenario("base", 10.0e9, 2.0);
    let alt = decision_scenario("big-efficient", 12.0e9, 4.0);
    let (report, rendered) = compare(&base, &alt);
    assert!(
        matches!(report.metrics.outcome, ChoiceOutcome::BetterAfter(_)),
        "{:?}",
        report.metrics.outcome
    );
    assert!(rendered.contains("better-after"), "{rendered}");
    assert!(!report.metrics.tc.is_infinite());
}

#[test]
fn baseline_comparison_reaches_better_until() {
    // Less embodied but hungrier: better only for short lifetimes.
    let base = decision_scenario("base", 10.0e9, 2.0);
    let alt = decision_scenario("lean-hungry", 8.0e9, 1.0);
    let (report, rendered) = compare(&base, &alt);
    assert!(
        matches!(report.metrics.outcome, ChoiceOutcome::BetterUntil(_)),
        "{:?}",
        report.metrics.outcome
    );
    assert!(rendered.contains("better-until"), "{rendered}");
}

#[test]
fn decision_rendering_is_consistent_across_formats() {
    let base = decision_scenario("base", 10.0e9, 2.0);
    let alt = decision_scenario("big-efficient", 12.0e9, 4.0);
    let model = CarbonModel::new(alt.build_context().unwrap());
    let report = model
        .compare(
            &base.build_design().unwrap(),
            &alt.build_design().unwrap(),
            &alt.build_workload().unwrap().unwrap(),
        )
        .unwrap();
    for format in ALL_FORMATS {
        let rendered = render_decision(&alt.name, &base.name, &report, format);
        assert!(rendered.contains("better-after"), "{format:?}: {rendered}");
    }
    let json = render_decision(&alt.name, &base.name, &report, OutputFormat::Json);
    let parsed = tdc_cli::JsonValue::parse(&json).unwrap();
    let decision = parsed.get("decision").unwrap();
    let tc = decision.get("tc_years").unwrap().as_f64().unwrap();
    assert!((tc - report.metrics.tc.years()).abs() < 1e-9);
}
