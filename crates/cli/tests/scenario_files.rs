//! End-to-end coverage of the checked-in scenario files: every file
//! under `scenarios/` (one per documented workload family, see
//! `docs/SCENARIOS.md`) parses, elaborates, and evaluates through the
//! same code paths the `tdc` binary drives — and the sweep report is
//! byte-identical whether evaluated serially or on 8 workers.

use tdc_cli::report::{
    render_embodied, render_lifecycle, render_sensitivity, render_sweep, OutputFormat,
};
use tdc_cli::Scenario;
use tdc_core::sensitivity::sensitivity_report;
use tdc_core::sweep::SweepExecutor;
use tdc_core::CarbonModel;

fn load(file: &str) -> Scenario {
    let path = format!("{}/../../scenarios/{file}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    Scenario::parse(&text).unwrap_or_else(|e| panic!("{file}: {e}"))
}

const ALL_FORMATS: [OutputFormat; 3] = [OutputFormat::Table, OutputFormat::Json, OutputFormat::Csv];

#[test]
fn every_checked_in_scenario_parses() {
    let dir = format!("{}/../../scenarios", env!("CARGO_MANIFEST_DIR"));
    let mut count = 0;
    for entry in std::fs::read_dir(&dir).expect("scenarios/ exists") {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "json") {
            let text = std::fs::read_to_string(&path).unwrap();
            Scenario::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            count += 1;
        }
    }
    assert!(
        count >= 4,
        "expected the four documented families, found {count}"
    );
}

#[test]
fn epyc_validation_family_runs_embodied_only() {
    let scenario = load("epyc_validation.json");
    assert!(!scenario.has_workload());
    let model = CarbonModel::new(scenario.build_context().unwrap());
    let design = scenario.build_design().unwrap();
    assert_eq!(design.dies().len(), 5, "four CCDs + one IO die");
    let breakdown = model.embodied(&design).unwrap();
    assert!(breakdown.total().kg() > 0.0);
    for format in ALL_FORMATS {
        let report = render_embodied(&scenario.name, &breakdown, format);
        assert!(
            report.contains("iod") || report.contains("total"),
            "{format:?}"
        );
    }
}

#[test]
fn hbm_family_runs_embodied_only() {
    let scenario = load("hbm_cube.json");
    let model = CarbonModel::new(scenario.build_context().unwrap());
    let design = scenario.build_design().unwrap();
    assert_eq!(design.dies().len(), 9, "base die + 8 DRAM tiers");
    let breakdown = model.embodied(&design).unwrap();
    assert!(breakdown.total().kg() > 0.0);
}

#[test]
fn av_drive_family_runs_lifecycle() {
    let scenario = load("av_drive.json");
    let model = CarbonModel::new(scenario.build_context().unwrap());
    let design = scenario.build_design().unwrap();
    let workload = scenario.build_workload().unwrap().expect("AV workload");
    let report = model.lifecycle(&design, &workload).unwrap();
    // The private-car AV case is operational-dominated (Table 5's
    // implied ~2.7x ratio for Orin).
    assert!(report.operational.carbon > report.embodied.total());
    for format in ALL_FORMATS {
        let rendered = render_lifecycle(&scenario.name, &report, format);
        assert!(!rendered.is_empty(), "{format:?}");
    }
}

#[test]
fn av_drive_sweep_is_byte_identical_serial_vs_parallel() {
    let scenario = load("av_drive.json");
    assert_eq!(scenario.sweep_workers(), Some(8));
    let model = CarbonModel::new(scenario.build_context().unwrap());
    let workload = scenario.build_workload().unwrap().unwrap();
    let plan = scenario.build_sweep().unwrap().plan().unwrap();
    assert!(plan.len() >= 40, "5 nodes x 9 technologies, minus drops");

    let serial = SweepExecutor::serial()
        .execute(&model, &plan, &workload)
        .unwrap();
    let parallel = SweepExecutor::new(8)
        .execute(&model, &plan, &workload)
        .unwrap();
    assert_eq!(serial.entries(), parallel.entries());
    for format in ALL_FORMATS {
        assert_eq!(
            render_sweep(&scenario.name, serial.entries(), format),
            render_sweep(&scenario.name, parallel.entries(), format),
            "{format:?} report must be byte-identical"
        );
    }
    // The ranked list is ascending in life-cycle total.
    for pair in serial.entries().windows(2) {
        assert!(pair[0].report.total() <= pair[1].report.total());
    }
}

#[test]
fn mixed_axes_family_sweeps_tier_counts_and_warms_the_staged_cache() {
    let scenario = load("mixed_axes.json");
    let model = CarbonModel::new(scenario.build_context().unwrap());
    let workload = scenario.build_workload().unwrap().unwrap();
    let plan = scenario.build_sweep().unwrap().plan().unwrap();
    // 2 nodes x (1 x 2D + {hybrid, emib} x {2, 4} tiers) = 10 points.
    assert_eq!(plan.len(), 10);
    assert!(plan
        .points()
        .iter()
        .any(|p| p.label().ends_with("@4") && p.tiers() == 4));

    // Same warm-executor flow as `tdc sweep --repeat 2`: the second
    // round answers every point from the per-stage artifact store and
    // renders byte-identical reports.
    let executor = SweepExecutor::serial();
    let cold = executor.execute(&model, &plan, &workload).unwrap();
    assert_eq!(cold.stats().stages.hits(), 0);
    let warm = executor.execute(&model, &plan, &workload).unwrap();
    assert_eq!(warm.stats().cache_hits, plan.len());
    assert!(warm.stats().stages.warm_hit_rate() > 0.99);
    for format in ALL_FORMATS {
        assert_eq!(
            render_sweep(&scenario.name, cold.entries(), format),
            render_sweep(&scenario.name, warm.entries(), format),
            "{format:?} warm report must be byte-identical"
        );
    }
}

#[test]
fn heterogeneous_split_family_runs_lifecycle_and_sensitivity() {
    let scenario = load("heterogeneous_split.json");
    let ctx = scenario.build_context().unwrap();
    let design = scenario.build_design().unwrap();
    assert_eq!(design.dies().len(), 2);
    assert_eq!(design.dies()[0].compute_share(), Some(0.0));
    let workload = scenario.build_workload().unwrap().unwrap();
    let model = CarbonModel::new(ctx.clone());
    let lifecycle = model.lifecycle(&design, &workload).unwrap();
    assert!(
        lifecycle.operational.is_viable(),
        "hybrid bonding carries Orin traffic"
    );

    let entries = sensitivity_report(&ctx, &design, &workload).unwrap();
    assert_eq!(entries.len(), 6);
    for format in ALL_FORMATS {
        let rendered = render_sensitivity(&scenario.name, &entries, format);
        assert!(rendered.contains("grid"), "{format:?}");
    }
}
