//! Error-path coverage for the registry/pack plumbing as the CLI
//! exercises it: unknown model names in scenario files, malformed
//! pack JSON, derating-expression parse failures, and duplicate
//! registrations must all fail with messages that name the file,
//! path, and (for parse errors) the line/column — never a panic and
//! never a silently ignored entry.

use tdc_cli::packs::check_packs;
use tdc_cli::Scenario;
use tdc_registry::ModelKind;

/// Creates a fresh per-test temp dir and writes `files` into it.
fn temp_dir_with(tag: &str, files: &[(&str, &str)]) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tdc-packs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for (name, content) in files {
        std::fs::write(dir.join(name), content).unwrap();
    }
    dir
}

fn checked_in_pack() -> String {
    format!(
        "{}/../../scenarios/packs/example_node.json",
        env!("CARGO_MANIFEST_DIR")
    )
}

#[test]
fn unknown_model_names_error_at_build_time_with_path_and_hint() {
    let scenario = Scenario::parse(
        r#"{"name": "x", "design": {"preset": "epyc-7452"},
            "context": {"die_yield": "wishful"}}"#,
    )
    .unwrap();
    let err = scenario.build_context().unwrap_err().to_string();
    assert!(err.contains("context.die_yield"), "{err}");
    assert!(
        err.contains("unknown yield model `wishful` (known: paper, poisson, murphy)"),
        "{err}"
    );

    let scenario = Scenario::parse(
        r#"{"name": "x", "design": {"preset": "epyc-7452"},
            "context": {"power_model": "frobnicate"}}"#,
    )
    .unwrap();
    let err = scenario.build_context().unwrap_err().to_string();
    assert!(err.contains("context.power_model"), "{err}");
    assert!(err.contains("unknown power model `frobnicate`"), "{err}");

    let scenario = Scenario::parse(r#"{"name": "x", "design": {"preset": "warp-core"}}"#).unwrap();
    let err = scenario.build_design().unwrap_err().to_string();
    assert!(err.contains("design.preset"), "{err}");
    assert!(
        err.contains("unknown preset `warp-core` (try `tdc scenarios` for the list)"),
        "{err}"
    );
}

#[test]
fn malformed_pack_json_names_the_file_line_and_column() {
    let dir = temp_dir_with(
        "badjson",
        &[("broken.json", "{\"pack\": \"x\",\n  \"nodes\": [")],
    );
    let file = dir.join("broken.json").display().to_string();
    let err = check_packs(std::slice::from_ref(&file)).unwrap_err();
    assert!(err.contains("broken.json"), "{err}");
    assert!(err.contains("line"), "{err}");
    assert!(err.contains("column"), "{err}");
    assert!(err.contains("1 of 1 pack file failed validation"), "{err}");

    // The same file referenced from a scenario's `packs` block fails
    // the build with the `packs[i]` path and the same diagnostics.
    let scenario = Scenario::parse(&format!(
        r#"{{"name": "x", "design": {{"preset": "epyc-7452"}}, "packs": [{:?}]}}"#,
        file
    ))
    .unwrap();
    let err = scenario.build_context().unwrap_err().to_string();
    assert!(err.contains("packs[0]"), "{err}");
    assert!(err.contains("line"), "{err}");
}

#[test]
fn expression_parse_errors_name_the_entry_and_column() {
    let dir = temp_dir_with(
        "badexpr",
        &[(
            "pack.json",
            r#"{"pack": "bad-expr", "nodes": [
                {"name": "n7", "derive": {"beta": "1 +* 2"}}
            ]}"#,
        )],
    );
    let err = check_packs(&[dir.join("pack.json").display().to_string()]).unwrap_err();
    assert!(err.contains("nodes[0].derive.beta"), "{err}");
    assert!(err.contains("expression error at column"), "{err}");
}

#[test]
fn unknown_parameters_and_bad_bases_name_their_fields() {
    let dir = temp_dir_with(
        "badfields",
        &[
            (
                "param.json",
                r#"{"pack": "p", "nodes": [{"name": "n7", "params": {"betta": 551}}]}"#,
            ),
            (
                "base.json",
                r#"{"pack": "b", "nodes": [{"name": "x", "base": "n6"}]}"#,
            ),
        ],
    );
    let err = check_packs(&[dir.join("param.json").display().to_string()]).unwrap_err();
    assert!(err.contains("nodes[0].params.betta"), "{err}");
    let err = check_packs(&[dir.join("base.json").display().to_string()]).unwrap_err();
    assert!(err.contains("nodes[0].base"), "{err}");
    assert!(err.contains("unknown process node `n6`"), "{err}");
}

#[test]
fn duplicate_names_are_rejected_within_and_across_packs() {
    let dir = temp_dir_with(
        "dups",
        &[
            (
                "twice.json",
                r#"{"pack": "d", "nodes": [
                    {"name": "glacier", "base": "n7", "params": {"beta": 600}},
                    {"name": "glacier", "base": "n7", "params": {"beta": 700}}
                ]}"#,
            ),
            (
                "one.json",
                r#"{"pack": "one", "nodes": [{"name": "glacier", "base": "n7"}]}"#,
            ),
            (
                "two.json",
                r#"{"pack": "two", "nodes": [{"name": "glacier", "base": "n5"}]}"#,
            ),
        ],
    );
    // Within one pack: the second entry collides with the first.
    let err = check_packs(&[dir.join("twice.json").display().to_string()]).unwrap_err();
    assert!(err.contains("duplicate"), "{err}");

    // Across packs: a scenario loading both gets a duplicate error
    // attributed to the second file in the `packs` array.
    let scenario_text =
        r#"{"name": "x", "design": {"preset": "epyc-7452"}, "packs": ["one.json", "two.json"]}"#;
    let scenario = Scenario::parse(scenario_text)
        .unwrap()
        .with_base_dir(Some(&dir));
    let err = scenario.build_context().unwrap_err().to_string();
    assert!(err.contains("packs[1]"), "{err}");
    assert!(
        err.contains("duplicate") || err.contains("already"),
        "{err}"
    );
}

#[test]
fn scenario_packs_block_loads_relative_to_the_scenario_file() {
    let pack = std::fs::read_to_string(checked_in_pack()).unwrap();
    let dir = temp_dir_with("roundtrip", &[("node_pack.json", &pack)]);
    let scenario = Scenario::parse(
        r#"{"name": "x", "design": {"preset": "epyc-7452"}, "packs": ["node_pack.json"]}"#,
    )
    .unwrap()
    .with_base_dir(Some(&dir));

    let registry = scenario.registry().unwrap();
    let n7 = registry
        .list(Some(ModelKind::Node))
        .into_iter()
        .find(|m| m.name == "n7")
        .expect("n7 listed");
    assert_eq!(n7.provenance.to_string(), "pack `example-node`");

    // The pack restates the shipped values, so the context it builds
    // prices identically to the no-pack context.
    let baseline = Scenario::parse(r#"{"name": "x", "design": {"preset": "epyc-7452"}}"#).unwrap();
    assert_eq!(
        format!("{:?}", scenario.build_context().unwrap()),
        format!("{:?}", baseline.build_context().unwrap()),
    );
}

#[test]
fn packs_check_accepts_the_checked_in_example() {
    let out = check_packs(&[checked_in_pack()]).unwrap();
    assert!(out.starts_with("ok "), "{out}");
    assert!(
        out.contains("pack `example-node` (1 node, 0 technologies)"),
        "{out}"
    );
}
