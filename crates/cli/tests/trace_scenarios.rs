//! End-to-end coverage of trace-backed scenarios: the checked-in
//! `av_trace.json` + `traces/av_day.csv` pair, the synthetic
//! generator's determinism, worker-count invariance of the sweep
//! report, and the path-named schema errors of the `trace` block.

use std::sync::Arc;
use tdc_cli::batch::load_request;
use tdc_cli::report::{render_sweep, OutputFormat};
use tdc_cli::Scenario;
use tdc_core::sweep::SweepExecutor;
use tdc_core::CarbonModel;
use tdc_traces::synth::{self, SynthKind};
use tdc_traces::TraceReader;

fn scenario_path(file: &str) -> String {
    format!("{}/../../scenarios/{file}", env!("CARGO_MANIFEST_DIR"))
}

/// Loads a checked-in scenario the way the `tdc` binary does: with
/// relative paths anchored to the scenario file's directory.
fn load(file: &str) -> Scenario {
    let path = scenario_path(file);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    Scenario::parse(&text)
        .unwrap_or_else(|e| panic!("{file}: {e}"))
        .with_base_dir(std::path::Path::new(&path).parent())
}

#[test]
fn av_trace_family_sweeps_identically_on_any_worker_count() {
    let scenario = load("av_trace.json");
    let workload = scenario.build_workload().unwrap().unwrap();
    let trace = workload.trace().expect("the scenario attaches a trace");
    assert!(trace.has_intensity());
    assert_eq!(trace.samples(), 1440, "one synthetic day, minutely");
    assert!(trace.segments() < trace.samples(), "constant runs merge");
    let model = CarbonModel::new(scenario.build_context().unwrap());
    let plan = scenario.build_sweep().unwrap().plan().unwrap();
    let serial = SweepExecutor::serial()
        .execute_batched(&model, &plan, &workload)
        .unwrap();
    let parallel = SweepExecutor::new(8)
        .parallel_threshold(0)
        .execute_batched(&model, &plan, &workload)
        .unwrap();
    assert_eq!(serial.entries(), parallel.entries());
    for format in [OutputFormat::Table, OutputFormat::Json, OutputFormat::Csv] {
        assert_eq!(
            render_sweep(&scenario.name, serial.entries(), format),
            render_sweep(&scenario.name, parallel.entries(), format),
            "{format:?}"
        );
    }
}

#[test]
fn av_trace_scenario_batches_as_a_sweep() {
    let path = scenario_path("av_trace.json");
    let (scenario, request) = load_request(std::path::Path::new(&path)).unwrap();
    assert_eq!(
        scenario.infer_request_kind(),
        tdc_cli::RequestKind::Sweep,
        "the sweep block drives batch inference"
    );
    match request {
        tdc_core::service::EvalRequest::Sweep { workload, .. } => {
            assert!(workload.trace().is_some(), "batch resolves the trace path");
        }
        other => panic!("expected a sweep request, got {other:?}"),
    }
}

#[test]
fn generator_is_seed_deterministic() {
    for kind in SynthKind::ALL {
        let a = synth::csv_string(kind, 2_000, 42, true);
        let b = synth::csv_string(kind, 2_000, 42, true);
        assert_eq!(a, b, "{kind:?}: same seed, same bytes");
        let c = synth::csv_string(kind, 2_000, 43, true);
        assert_ne!(a, c, "{kind:?}: the seed actually drives the stream");
        // The generated CSV round-trips through the reader.
        let profile = TraceReader::new().ingest(a.as_bytes()).unwrap();
        assert_eq!(profile.samples(), 2_000);
        assert!(profile.has_intensity());
    }
}

#[test]
fn generated_trace_prices_a_scenario_from_any_directory() {
    // A scenario and its trace written side by side load no matter
    // what the process cwd is — the base dir anchors the path.
    let dir = std::env::temp_dir().join(format!("tdc-trace-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("day.csv");
    std::fs::write(
        &trace_path,
        synth::csv_string(SynthKind::Diurnal, 1_000, 9, false),
    )
    .unwrap();
    let text = r#"{
      "workload": {
        "throughput_tops": 254,
        "active_hours": 10000,
        "trace": {"path": "day.csv"}
      }
    }"#;
    let scenario = Scenario::parse(text).unwrap().with_base_dir(Some(&dir));
    let workload = scenario.build_workload().unwrap().unwrap();
    let trace = workload.trace().unwrap();
    assert_eq!(trace.samples(), 1_000);
    assert!(
        !trace.has_intensity(),
        "utilization-only keeps the region grid"
    );
    // Without a base dir the same relative path misses (unless the
    // cwd happens to hold one) — the error names the field and file.
    let unanchored = Scenario::parse(text).unwrap();
    let err = unanchored.build_workload().unwrap_err();
    assert!(err.to_string().contains("workload.trace.path"), "{err}");
    assert!(err.to_string().contains("day.csv"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_block_schema_errors_name_the_path() {
    // Missing file: the error carries the resolved path and field.
    let s = Scenario::parse(
        r#"{"workload": {"throughput_tops": 1, "active_hours": 1,
            "trace": {"path": "no-such-trace.csv"}}}"#,
    )
    .unwrap();
    let err = s.build_workload().unwrap_err();
    assert!(err.to_string().contains("workload.trace.path"), "{err}");
    assert!(err.to_string().contains("no-such-trace.csv"), "{err}");
    // A malformed trace reports the 1-based line.
    let dir = std::env::temp_dir().join(format!("tdc-trace-bad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("bad.csv"), "0.0,0.5\n1.0,1.5\n").unwrap();
    let s = Scenario::parse(
        r#"{"workload": {"throughput_tops": 1, "active_hours": 1,
            "trace": {"path": "bad.csv"}}}"#,
    )
    .unwrap()
    .with_base_dir(Some(&dir));
    let err = s.build_workload().unwrap_err();
    assert!(err.to_string().contains("line 2"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
    // Combining the trace with the scalar utilization is ambiguous —
    // rejected at parse time, not silently resolved.
    let err = Scenario::parse(
        r#"{"workload": {"throughput_tops": 1, "active_hours": 1,
            "average_utilization": 0.5, "trace": {"path": "x.csv"}}}"#,
    )
    .unwrap_err();
    assert!(
        err.to_string().contains("workload.average_utilization"),
        "{err}"
    );
    // Unknown fields inside the block are rejected with their path.
    let err = Scenario::parse(
        r#"{"workload": {"throughput_tops": 1, "active_hours": 1,
            "trace": {"path": "x.csv", "format": "csv"}}}"#,
    )
    .unwrap_err();
    assert!(err.to_string().contains("workload.trace.format"), "{err}");
    // And the path itself is required.
    let err =
        Scenario::parse(r#"{"workload": {"throughput_tops": 1, "active_hours": 1, "trace": {}}}"#)
            .unwrap_err();
    assert!(err.to_string().contains("workload.trace.path"), "{err}");
}

#[test]
fn trace_statistics_replace_the_scalar_duty_cycle() {
    // The checked-in day trace's mean utilization and energy-weighted
    // intensity — not the workload defaults — price the mission.
    let scenario = load("av_trace.json");
    let workload = scenario.build_workload().unwrap().unwrap();
    let trace = Arc::clone(workload.trace().unwrap());
    let pricing = trace.pricing();
    assert!(pricing.mean_utilization > 0.0 && pricing.mean_utilization < 1.0);
    let g = pricing
        .intensity_kg_per_kwh
        .expect("intensity column present");
    assert!(g > 0.0, "kg CO2e per kWh");
    let integrals = trace.integrals();
    assert!(
        (integrals.mean_utilization() - pricing.mean_utilization).abs() < 1e-15,
        "pricing mirrors the prefix-sum integrals"
    );
}
