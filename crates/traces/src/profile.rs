//! The columnar [`TraceProfile`] and its prefix-sum query surface.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Builds a [`TraceProfile`] sample by sample, merging consecutive
/// samples with bitwise-identical values into constant segments as it
/// goes — the streaming [`TraceReader`](crate::TraceReader) and the
/// [`synth`](crate::synth) generators both feed this, so every ingest
/// path compacts identically.
///
/// Sample `i`'s values hold over `[t_i, t_{i+1})`; the final pushed
/// sample only terminates the trace (its value columns are ignored).
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    with_intensity: bool,
    samples: usize,
    /// The pending sample: its interval closes when the next arrives.
    /// Intensity is stored in kg/kWh (NaN when the trace has none).
    prev: Option<(f64, f64, f64)>,
    start_hours: f64,
    seg_start: Vec<f64>,
    seg_util: Vec<f64>,
    seg_intensity: Vec<f64>,
}

impl TraceBuilder {
    /// A builder for a trace with or without a grid-intensity column.
    #[must_use]
    pub fn new(with_intensity: bool) -> Self {
        Self {
            with_intensity,
            samples: 0,
            prev: None,
            start_hours: 0.0,
            seg_start: Vec::new(),
            seg_util: Vec::new(),
            seg_intensity: Vec::new(),
        }
    }

    /// Whether this trace carries a grid-intensity column.
    #[must_use]
    pub fn with_intensity(&self) -> bool {
        self.with_intensity
    }

    /// Samples pushed so far.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Appends one sample. Intensity is given in g CO₂/kWh (the unit
    /// logs use) and stored in the model's canonical kg/kWh with the
    /// same expression `CarbonIntensity::from_g_per_kwh` uses, so a
    /// trace holding a region's published g/kWh figure prices
    /// bit-identically to that region.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite or non-increasing timestamp, a
    /// utilization outside `[0, 1]`, a negative or non-finite
    /// intensity, or an intensity presence that contradicts
    /// [`TraceBuilder::new`].
    pub fn push(&mut self, t_hours: f64, utilization: f64, intensity_g_per_kwh: Option<f64>) {
        assert!(t_hours.is_finite(), "trace timestamp must be finite");
        assert!(
            (0.0..=1.0).contains(&utilization),
            "trace utilization must be in [0, 1], got {utilization}"
        );
        assert_eq!(
            intensity_g_per_kwh.is_some(),
            self.with_intensity,
            "every sample must match the trace's column count"
        );
        let intensity_kg = intensity_g_per_kwh.map_or(f64::NAN, |g| {
            assert!(
                g.is_finite() && g >= 0.0,
                "trace intensity must be non-negative, got {g}"
            );
            g * 1.0e-3
        });
        if let Some((pt, pu, pg)) = self.prev {
            assert!(
                t_hours > pt,
                "trace timestamps must be strictly increasing ({t_hours} after {pt})"
            );
            // Close the pending interval [pt, t): extend the open
            // segment when the values are bitwise identical, else
            // start a new one at pt.
            let merges = self.seg_util.last().is_some_and(|lu| {
                lu.to_bits() == pu.to_bits()
                    && (!self.with_intensity
                        || self
                            .seg_intensity
                            .last()
                            .is_some_and(|lg| lg.to_bits() == pg.to_bits()))
            });
            if !merges {
                self.seg_start.push(pt);
                self.seg_util.push(pu);
                if self.with_intensity {
                    self.seg_intensity.push(pg);
                }
            }
        } else {
            self.start_hours = t_hours;
        }
        self.prev = Some((t_hours, utilization, intensity_kg));
        self.samples += 1;
    }

    /// Finishes the profile: computes the prefix-sum integrals, the
    /// uniform-value short-circuits, and the content fingerprint.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two samples (a trace needs at least one
    /// interval).
    #[must_use]
    pub fn build(self) -> TraceProfile {
        self.build_with_peak(0)
    }

    pub(crate) fn build_with_peak(self, peak_buffer_bytes: usize) -> TraceProfile {
        assert!(
            self.samples >= 2,
            "a trace needs at least two samples (one interval), got {}",
            self.samples
        );
        let end_hours = self.prev.expect("samples >= 2").0;
        let n = self.seg_start.len();
        let mut cum_dt = Vec::with_capacity(n + 1);
        let mut cum_util_dt = Vec::with_capacity(n + 1);
        let (mut cum_g_dt, mut cum_util_g_dt) = if self.with_intensity {
            (Vec::with_capacity(n + 1), Vec::with_capacity(n + 1))
        } else {
            (Vec::new(), Vec::new())
        };
        cum_dt.push(0.0);
        cum_util_dt.push(0.0);
        if self.with_intensity {
            cum_g_dt.push(0.0);
            cum_util_g_dt.push(0.0);
        }
        for k in 0..n {
            let next = if k + 1 < n {
                self.seg_start[k + 1]
            } else {
                end_hours
            };
            let dt = next - self.seg_start[k];
            cum_dt.push(cum_dt[k] + dt);
            cum_util_dt.push(cum_util_dt[k] + self.seg_util[k] * dt);
            if self.with_intensity {
                cum_g_dt.push(cum_g_dt[k] + self.seg_intensity[k] * dt);
                cum_util_g_dt
                    .push(cum_util_g_dt[k] + self.seg_util[k] * self.seg_intensity[k] * dt);
            }
        }
        let uniform = |values: &[f64]| -> Option<f64> {
            let first = *values.first()?;
            values
                .iter()
                .all(|v| v.to_bits() == first.to_bits())
                .then_some(first)
        };
        let uniform_util = uniform(&self.seg_util);
        let uniform_intensity = uniform(&self.seg_intensity);
        let fingerprint = fingerprint_columns(
            self.samples,
            self.with_intensity,
            self.start_hours,
            end_hours,
            &self.seg_start,
            &self.seg_util,
            &self.seg_intensity,
        );
        TraceProfile {
            samples: self.samples,
            with_intensity: self.with_intensity,
            start_hours: self.start_hours,
            end_hours,
            seg_start: self.seg_start,
            seg_util: self.seg_util,
            seg_intensity: self.seg_intensity,
            cum_dt,
            cum_util_dt,
            cum_g_dt,
            cum_util_g_dt,
            uniform_util,
            uniform_intensity,
            fingerprint,
            peak_buffer_bytes,
            pricing: OnceLock::new(),
            pricing_hits: AtomicU64::new(0),
        }
    }
}

/// One FNV-1a-64 step.
fn fnv_step(mut h: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Two independently-seeded 64-bit FNV-1a streams over the segment
/// columns, combined into one 128-bit content fingerprint.
fn fingerprint_columns(
    samples: usize,
    with_intensity: bool,
    start: f64,
    end: f64,
    seg_start: &[f64],
    seg_util: &[f64],
    seg_intensity: &[f64],
) -> u128 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const SALT: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut h1 = OFFSET;
    let mut h2 = OFFSET ^ SALT;
    let mut feed = |w: u64| {
        h1 = fnv_step(h1, w);
        h2 = fnv_step(h2, w ^ SALT);
    };
    feed(samples as u64);
    feed(u64::from(with_intensity));
    feed(start.to_bits());
    feed(end.to_bits());
    for k in 0..seg_start.len() {
        feed(seg_start[k].to_bits());
        feed(seg_util[k].to_bits());
        if with_intensity {
            feed(seg_intensity[k].to_bits());
        }
    }
    (u128::from(h1) << 64) | u128::from(h2)
}

/// The O(1) operational-pricing summary of a whole trace (what
/// [`operational_report`](../tdc_core/pipeline/fn.operational_report.html)-style
/// consumers read per evaluation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePricing {
    /// Time-weighted mean utilization, `Σ util·dt / Σ dt` — or the
    /// exact sample value when the trace's utilization is uniform, so
    /// a constant trace reproduces the scalar path bit-for-bit.
    pub mean_utilization: f64,
    /// Energy-weighted grid intensity in kg CO₂/kWh,
    /// `Σ util·intensity·dt / Σ util·dt` (time-weighted when the trace
    /// never draws power) — `None` for utilization-only traces, which
    /// keep the model context's grid region.
    pub intensity_kg_per_kwh: Option<f64>,
}

/// Windowed prefix-sum integrals over a trace (hours-based).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceIntegrals {
    /// Σ dt over the window, in hours.
    pub dt_hours: f64,
    /// Σ util·dt, in hours.
    pub util_dt: f64,
    /// Σ intensity·dt in (kg/kWh)·h, when the trace has intensity.
    pub intensity_dt: Option<f64>,
    /// Σ util·intensity·dt in (kg/kWh)·h, when the trace has intensity.
    pub util_intensity_dt: Option<f64>,
}

impl TraceIntegrals {
    /// Time-weighted mean utilization over the window (0 for an empty
    /// window).
    #[must_use]
    pub fn mean_utilization(&self) -> f64 {
        if self.dt_hours > 0.0 {
            self.util_dt / self.dt_hours
        } else {
            0.0
        }
    }

    /// Time-weighted mean grid intensity over the window (kg/kWh).
    #[must_use]
    pub fn mean_intensity_kg_per_kwh(&self) -> Option<f64> {
        let g = self.intensity_dt?;
        (self.dt_hours > 0.0).then(|| g / self.dt_hours)
    }

    /// Energy-weighted grid intensity over the window (kg/kWh): the
    /// intensity seen by each unit of drawn energy. Falls back to the
    /// time-weighted mean when the window draws no power.
    #[must_use]
    pub fn energy_weighted_intensity_kg_per_kwh(&self) -> Option<f64> {
        let ug = self.util_intensity_dt?;
        if self.util_dt > 0.0 {
            Some(ug / self.util_dt)
        } else {
            self.mean_intensity_kg_per_kwh()
        }
    }
}

/// A compacted, immutable trace: merged constant segments in columnar
/// form with precomputed prefix-sum integrals, a content fingerprint
/// (what stage tags and workload equality key on), and a memoized
/// [`TracePricing`] summary whose warm lookups are counted
/// ([`TraceProfile::pricing_hits`], the `trace_hits=` stat).
pub struct TraceProfile {
    samples: usize,
    with_intensity: bool,
    start_hours: f64,
    end_hours: f64,
    /// Segment start times (hours); segment `k` ends at `seg_start[k+1]`
    /// (or `end_hours` for the last).
    seg_start: Vec<f64>,
    seg_util: Vec<f64>,
    /// kg/kWh per segment; empty for utilization-only traces.
    seg_intensity: Vec<f64>,
    /// Prefix sums, length `segments + 1`: `cum_*[k]` integrates
    /// segments `[0, k)`.
    cum_dt: Vec<f64>,
    cum_util_dt: Vec<f64>,
    cum_g_dt: Vec<f64>,
    cum_util_g_dt: Vec<f64>,
    /// The exact sample value when every segment agrees bitwise — the
    /// short-circuit that makes constant traces price byte-identically
    /// to the scalar path (`(u·T)/T` is not ulp-exact; returning `u`
    /// is).
    uniform_util: Option<f64>,
    uniform_intensity: Option<f64>,
    fingerprint: u128,
    peak_buffer_bytes: usize,
    pricing: OnceLock<TracePricing>,
    pricing_hits: AtomicU64,
}

impl TraceProfile {
    /// Samples ingested (lines, before segment merging).
    #[must_use]
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Merged constant segments.
    #[must_use]
    pub fn segments(&self) -> usize {
        self.seg_start.len()
    }

    /// Whether the trace carries a grid-intensity column.
    #[must_use]
    pub fn has_intensity(&self) -> bool {
        self.with_intensity
    }

    /// First timestamp (hours).
    #[must_use]
    pub fn start_hours(&self) -> f64 {
        self.start_hours
    }

    /// Last timestamp (hours).
    #[must_use]
    pub fn end_hours(&self) -> f64 {
        self.end_hours
    }

    /// Trace span in hours.
    #[must_use]
    pub fn duration_hours(&self) -> f64 {
        self.end_hours - self.start_hours
    }

    /// The 128-bit content fingerprint (over the merged segment
    /// columns). Two ingests of the same log always agree; this is
    /// what flows into stage tags (via `Debug`) and into `PartialEq`,
    /// keeping trace-workload cache keys and batch tag memos O(1).
    #[must_use]
    pub fn fingerprint(&self) -> u128 {
        self.fingerprint
    }

    /// The exact utilization when every interval agrees bitwise.
    #[must_use]
    pub fn uniform_utilization(&self) -> Option<f64> {
        self.uniform_util
    }

    /// The exact intensity (kg/kWh) when every interval agrees bitwise.
    #[must_use]
    pub fn uniform_intensity_kg_per_kwh(&self) -> Option<f64> {
        self.uniform_intensity
    }

    /// Peak resident input buffering during the streaming ingest that
    /// produced this profile (chunk buffer + carry buffer, bytes).
    /// Zero for builder-made profiles. Bounded by a small multiple of
    /// the reader's chunk size — never by the file size.
    #[must_use]
    pub fn peak_buffer_bytes(&self) -> usize {
        self.peak_buffer_bytes
    }

    /// The memoized whole-trace pricing summary. The first call
    /// integrates (O(1) off the precomputed prefix sums); every later
    /// call returns the memo and counts a warm hit
    /// ([`TraceProfile::pricing_hits`]).
    #[must_use]
    pub fn pricing(&self) -> TracePricing {
        if let Some(p) = self.pricing.get() {
            self.pricing_hits.fetch_add(1, Ordering::Relaxed);
            return *p;
        }
        *self.pricing.get_or_init(|| self.compute_pricing())
    }

    /// Warm [`TraceProfile::pricing`] lookups served from the memo so
    /// far (the `trace_hits=` stderr stat).
    #[must_use]
    pub fn pricing_hits(&self) -> u64 {
        self.pricing_hits.load(Ordering::Relaxed)
    }

    fn compute_pricing(&self) -> TracePricing {
        let full = self.integrals();
        let mean_utilization = self.uniform_util.unwrap_or_else(|| full.mean_utilization());
        let intensity_kg_per_kwh = if self.with_intensity {
            Some(
                self.uniform_intensity
                    .or_else(|| full.energy_weighted_intensity_kg_per_kwh())
                    .expect("intensity column present"),
            )
        } else {
            None
        };
        TracePricing {
            mean_utilization,
            intensity_kg_per_kwh,
        }
    }

    /// Full-span integrals: one prefix-sum read, O(1).
    #[must_use]
    pub fn integrals(&self) -> TraceIntegrals {
        let last = self.segments();
        TraceIntegrals {
            dt_hours: self.cum_dt[last],
            util_dt: self.cum_util_dt[last],
            intensity_dt: self.with_intensity.then(|| self.cum_g_dt[last]),
            util_intensity_dt: self.with_intensity.then(|| self.cum_util_g_dt[last]),
        }
    }

    /// Integrals over `[from_hours, to_hours]` (clamped to the trace
    /// span): two binary searches plus prefix subtractions — O(log
    /// segments), no per-sample work.
    #[must_use]
    pub fn window(&self, from_hours: f64, to_hours: f64) -> TraceIntegrals {
        let from = from_hours.max(self.start_hours).min(self.end_hours);
        let to = to_hours.max(self.start_hours).min(self.end_hours);
        if to <= from {
            return TraceIntegrals {
                dt_hours: 0.0,
                util_dt: 0.0,
                intensity_dt: self.with_intensity.then_some(0.0),
                util_intensity_dt: self.with_intensity.then_some(0.0),
            };
        }
        let (a_dt, a_u, a_g, a_ug) = self.prefix_at(from);
        let (b_dt, b_u, b_g, b_ug) = self.prefix_at(to);
        TraceIntegrals {
            dt_hours: b_dt - a_dt,
            util_dt: b_u - a_u,
            intensity_dt: self.with_intensity.then_some(b_g - a_g),
            util_intensity_dt: self.with_intensity.then_some(b_ug - a_ug),
        }
    }

    /// Integrals over `[start, t]`: the prefix through the segment
    /// containing `t` plus the partial (constant-valued) remainder.
    fn prefix_at(&self, t: f64) -> (f64, f64, f64, f64) {
        let k = self.seg_start.partition_point(|s| *s <= t).max(1) - 1;
        let into = t - self.seg_start[k];
        let u = self.seg_util[k];
        let g = if self.with_intensity {
            self.seg_intensity[k]
        } else {
            0.0
        };
        (
            self.cum_dt[k] + into,
            self.cum_util_dt[k] + u * into,
            if self.with_intensity {
                self.cum_g_dt[k] + g * into
            } else {
                0.0
            },
            if self.with_intensity {
                self.cum_util_g_dt[k] + u * g * into
            } else {
                0.0
            },
        )
    }
}

/// Compact and deterministic: this rendering is embedded (via
/// `Workload`'s derived `Debug`) in the operational stage tag, so it
/// must identify the trace content without dumping the columns.
impl fmt::Debug for TraceProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TraceProfile {{ samples: {}, segments: {}, span_h: {:?}, intensity: {}, fp: {:032x} }}",
            self.samples,
            self.segments(),
            self.duration_hours(),
            self.with_intensity,
            self.fingerprint,
        )
    }
}

/// O(1): content fingerprints stand in for the columns, so workload
/// equality (the batch tag memo's key) stays cheap with traces
/// attached.
impl PartialEq for TraceProfile {
    fn eq(&self, other: &Self) -> bool {
        self.fingerprint == other.fingerprint
            && self.samples == other.samples
            && self.segments() == other.segments()
    }
}

impl Clone for TraceProfile {
    fn clone(&self) -> Self {
        Self {
            samples: self.samples,
            with_intensity: self.with_intensity,
            start_hours: self.start_hours,
            end_hours: self.end_hours,
            seg_start: self.seg_start.clone(),
            seg_util: self.seg_util.clone(),
            seg_intensity: self.seg_intensity.clone(),
            cum_dt: self.cum_dt.clone(),
            cum_util_dt: self.cum_util_dt.clone(),
            cum_g_dt: self.cum_g_dt.clone(),
            cum_util_g_dt: self.cum_util_g_dt.clone(),
            uniform_util: self.uniform_util,
            uniform_intensity: self.uniform_intensity,
            fingerprint: self.fingerprint,
            peak_buffer_bytes: self.peak_buffer_bytes,
            // The memo is recomputable state; a clone starts cold so
            // its hit counter tracks its own consumers.
            pricing: OnceLock::new(),
            pricing_hits: AtomicU64::new(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diurnal_builder() -> TraceBuilder {
        let mut b = TraceBuilder::new(true);
        // 0–8 h idle on a clean grid, 8–16 h busy on a dirty grid,
        // 16–24 h half-load back on the clean grid.
        b.push(0.0, 0.1, Some(100.0));
        b.push(4.0, 0.1, Some(100.0)); // merges with the previous interval
        b.push(8.0, 0.9, Some(500.0));
        b.push(16.0, 0.5, Some(100.0));
        b.push(24.0, 0.0, Some(0.0)); // terminator: values ignored
        b
    }

    #[test]
    fn consecutive_identical_samples_merge_into_segments() {
        let p = diurnal_builder().build();
        assert_eq!(p.samples(), 5);
        assert_eq!(p.segments(), 3);
        assert_eq!(p.duration_hours(), 24.0);
        assert!(p.has_intensity());
        assert!(p.uniform_utilization().is_none());
    }

    #[test]
    fn full_span_integrals_match_hand_computation() {
        let p = diurnal_builder().build();
        let i = p.integrals();
        assert!((i.dt_hours - 24.0).abs() < 1e-12);
        // 0.1·8 + 0.9·8 + 0.5·8 = 12.
        assert!((i.util_dt - 12.0).abs() < 1e-12);
        // kg/kWh: (0.1·8 + 0.5·8 + 0.1·8) ...
        let g = i.intensity_dt.unwrap();
        assert!((g - (0.1 * 8.0 + 0.5 * 8.0 + 0.1 * 8.0)).abs() < 1e-12);
        let ug = i.util_intensity_dt.unwrap();
        assert!((ug - (0.1 * 0.1 * 8.0 + 0.9 * 0.5 * 8.0 + 0.5 * 0.1 * 8.0)).abs() < 1e-12);
    }

    #[test]
    fn windowed_integrals_split_partial_segments() {
        let p = diurnal_builder().build();
        // [6, 10]: 2 h at 0.1 + 2 h at 0.9.
        let w = p.window(6.0, 10.0);
        assert!((w.dt_hours - 4.0).abs() < 1e-12);
        assert!((w.util_dt - (0.1 * 2.0 + 0.9 * 2.0)).abs() < 1e-12);
        // Windows clamp to the span; inverted windows are empty.
        let all = p.window(-5.0, 100.0);
        assert!((all.util_dt - p.integrals().util_dt).abs() < 1e-15);
        assert_eq!(p.window(10.0, 6.0).dt_hours, 0.0);
        // Sum of adjacent windows = full span (associativity of the
        // prefix representation).
        let a = p.window(0.0, 13.3);
        let b = p.window(13.3, 24.0);
        let full = p.integrals();
        assert!((a.util_dt + b.util_dt - full.util_dt).abs() < 1e-12);
        assert!(
            (a.util_intensity_dt.unwrap() + b.util_intensity_dt.unwrap()
                - full.util_intensity_dt.unwrap())
            .abs()
                < 1e-12
        );
    }

    #[test]
    fn uniform_trace_short_circuits_to_the_exact_sample_value() {
        let mut b = TraceBuilder::new(false);
        // 0.3 has no exact binary representation: (0.3·T)/T would not
        // be bitwise 0.3 for every T, the short-circuit is.
        b.push(0.0, 0.3, None);
        b.push(7.0, 0.3, None);
        b.push(31.0, 0.3, None);
        let p = b.build();
        assert_eq!(p.segments(), 1);
        assert_eq!(p.uniform_utilization(), Some(0.3));
        assert_eq!(p.pricing().mean_utilization.to_bits(), 0.3f64.to_bits());
        assert_eq!(p.pricing().intensity_kg_per_kwh, None);
    }

    #[test]
    fn uniform_intensity_matches_from_g_per_kwh_bitwise() {
        let mut b = TraceBuilder::new(true);
        b.push(0.0, 0.5, Some(475.0));
        b.push(10.0, 0.5, Some(475.0));
        let p = b.build();
        // Same expression as CarbonIntensity::from_g_per_kwh(475.0).
        assert_eq!(
            p.pricing().intensity_kg_per_kwh.unwrap().to_bits(),
            (475.0f64 * 1.0e-3).to_bits()
        );
    }

    #[test]
    fn pricing_memoizes_and_counts_warm_hits() {
        let p = diurnal_builder().build();
        assert_eq!(p.pricing_hits(), 0);
        let first = p.pricing();
        assert_eq!(p.pricing_hits(), 0, "the integrating call is a miss");
        for _ in 0..5 {
            assert_eq!(p.pricing(), first);
        }
        assert_eq!(p.pricing_hits(), 5);
        // Energy-weighted intensity favours the dirty busy block over
        // the clean idle blocks.
        let g = first.intensity_kg_per_kwh.unwrap();
        assert!(g > p.integrals().mean_intensity_kg_per_kwh().unwrap());
    }

    #[test]
    fn zero_utilization_trace_prices_time_weighted_intensity() {
        let mut b = TraceBuilder::new(true);
        b.push(0.0, 0.0, Some(100.0));
        b.push(1.0, 0.0, Some(300.0));
        b.push(2.0, 0.0, Some(300.0));
        let p = b.build();
        let g = p.pricing().intensity_kg_per_kwh.unwrap();
        assert!((g - 0.2).abs() < 1e-12, "time-weighted mean of 0.1/0.3");
        assert_eq!(p.pricing().mean_utilization, 0.0);
    }

    #[test]
    fn fingerprint_distinguishes_content_and_equality_is_cheap() {
        let a = diurnal_builder().build();
        let b = diurnal_builder().build();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = TraceBuilder::new(true);
        c.push(0.0, 0.1, Some(100.0));
        c.push(4.0, 0.1, Some(100.0));
        c.push(8.0, 0.9, Some(501.0)); // one value differs
        c.push(16.0, 0.5, Some(100.0));
        c.push(24.0, 0.0, Some(0.0));
        let c = c.build();
        assert_ne!(a, c);
        assert_ne!(a.fingerprint(), c.fingerprint());
        // Debug (the stage-tag ingredient) differs too.
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotonic_timestamps_panic() {
        let mut b = TraceBuilder::new(false);
        b.push(1.0, 0.5, None);
        b.push(1.0, 0.5, None);
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn single_sample_trace_panics() {
        let mut b = TraceBuilder::new(false);
        b.push(0.0, 0.5, None);
        let _ = b.build();
    }
}
