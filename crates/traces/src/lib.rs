//! Streaming workload/grid traces ([`TraceProfile`]).
//!
//! Real fleets do not run at a constant utilization on a constant
//! grid: an AV platform alternates drive, idle, and charge phases
//! while the grid's carbon intensity follows its own diurnal curve.
//! This crate turns large time-series logs of that behaviour into a
//! compact, query-in-O(1) form the carbon model can price against:
//!
//! * [`TraceReader`] — a **chunked streaming** parser: the log is read
//!   through a fixed-size chunk buffer (plus a carry buffer for the
//!   line split across two chunks), so peak resident input memory is
//!   bounded by the chunk size no matter how many samples the file
//!   holds. The bound is recorded per ingest
//!   ([`TraceProfile::peak_buffer_bytes`]) and asserted in tests.
//! * [`TraceProfile`] — the columnar result: consecutive samples with
//!   bitwise-identical values are **merged into constant segments**,
//!   and four prefix-sum integrals are precomputed over the segments
//!   (Σ dt, Σ util·dt, Σ util·intensity·dt, Σ intensity·dt). Any
//!   windowed time integral is then two binary searches plus a
//!   handful of subtractions ([`TraceProfile::window`]), and the
//!   full-span operational pricing summary ([`TraceProfile::pricing`])
//!   is a memoized O(1) lookup — which is what keeps a trace-driven
//!   sweep at the scalar path's warm throughput: O(samples) once at
//!   ingest, O(1) per sweep point after.
//! * [`synth`] — seeded, deterministic synthetic diurnal and
//!   drive-cycle traces for benches, tests, and the `trace_gen` bin.
//!
//! The text format (see `docs/TRACES.md`): one sample per line,
//! `timestamp_hours,utilization[,intensity_g_per_kwh]`, `#` comments
//! and blank lines ignored, timestamps strictly increasing. Sample
//! `i`'s values hold over `[t_i, t_{i+1})`, so the final line only
//! terminates the trace.

#![forbid(unsafe_code)]

mod profile;
mod reader;
pub mod synth;

pub use profile::{TraceBuilder, TraceIntegrals, TracePricing, TraceProfile};
pub use reader::{TraceError, TraceReader, DEFAULT_CHUNK_BYTES};
