//! Seeded synthetic traces (diurnal and AV drive-cycle) for benches,
//! tests, and the `tdc-bench` `trace_gen` bin.
//!
//! Generation is fully deterministic for a given `(kind, samples,
//! seed, intensity)` tuple: the value curves are piecewise-linear
//! daily tables (no libm calls whose last bit could vary), the
//! randomness is a SplitMix64 stream, and values are quantized onto
//! coarse grids — which also gives the segment-merging ingest
//! realistic constant runs to compact.

use crate::profile::TraceProfile;
use crate::reader::TraceReader;
use std::io::{self, Write};

/// Minutely sampling: the step between consecutive timestamps.
pub const STEP_HOURS: f64 = 1.0 / 60.0;

/// Which synthetic pattern to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynthKind {
    /// A datacenter-style day: utilization and grid intensity both
    /// follow (noisy, quantized) diurnal curves.
    Diurnal,
    /// An AV platform: drive / idle / charge phases of random length,
    /// on the same diurnal grid.
    DriveCycle,
}

impl SynthKind {
    /// Every kind, for CLIs listing the options.
    pub const ALL: [SynthKind; 2] = [SynthKind::Diurnal, SynthKind::DriveCycle];

    /// Parses a kind token (`diurnal`, `drive-cycle`).
    #[must_use]
    pub fn from_token(token: &str) -> Option<Self> {
        match token.trim().to_ascii_lowercase().as_str() {
            "diurnal" => Some(SynthKind::Diurnal),
            "drive-cycle" | "drive_cycle" | "drive" => Some(SynthKind::DriveCycle),
            _ => None,
        }
    }

    /// The stable token.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SynthKind::Diurnal => "diurnal",
            SynthKind::DriveCycle => "drive-cycle",
        }
    }
}

/// SplitMix64: tiny, seedable, and deterministic everywhere.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn uniform(&mut self) -> f64 {
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        ((self.next() >> 11) as f64) * SCALE
    }

    /// Uniform integer in `[lo, hi]`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
}

/// Hour-of-day utilization shape (datacenter-ish double hump).
const UTIL_TABLE: [f64; 24] = [
    0.12, 0.10, 0.08, 0.08, 0.10, 0.18, 0.35, 0.55, 0.62, 0.55, 0.48, 0.50, 0.55, 0.52, 0.48, 0.50,
    0.58, 0.70, 0.75, 0.65, 0.48, 0.32, 0.22, 0.15,
];

/// Hour-of-day grid intensity shape (g CO₂/kWh, evening-peaking).
const G_TABLE: [f64; 24] = [
    320.0, 300.0, 290.0, 285.0, 290.0, 320.0, 380.0, 450.0, 520.0, 560.0, 540.0, 500.0, 460.0,
    430.0, 420.0, 440.0, 480.0, 540.0, 590.0, 610.0, 570.0, 490.0, 420.0, 360.0,
];

/// Piecewise-linear daily interpolation of a 24-entry table.
fn daily(table: &[f64; 24], t_hours: f64) -> f64 {
    let h = t_hours.rem_euclid(24.0);
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let i = (h.floor() as usize) % 24;
    let frac = h - h.floor();
    table[i] * (1.0 - frac) + table[(i + 1) % 24] * frac
}

/// Utilization quantized to 1/64 steps, clamped to `[0, 1]`.
fn quantize_util(u: f64) -> f64 {
    (u.clamp(0.0, 1.0) * 64.0).round() / 64.0
}

/// Intensity quantized to 10 g/kWh steps, clamped to `[20, 900]`.
fn quantize_g(g: f64) -> f64 {
    (g.clamp(20.0, 900.0) / 10.0).round() * 10.0
}

/// Writes a synthetic trace log (`samples` lines plus a header
/// comment) to `out`.
///
/// # Errors
///
/// Propagates writer failures.
///
/// # Panics
///
/// Panics on fewer than two samples.
pub fn write_csv<W: Write>(
    out: &mut W,
    kind: SynthKind,
    samples: usize,
    seed: u64,
    with_intensity: bool,
) -> io::Result<()> {
    assert!(samples >= 2, "a trace needs at least two samples");
    writeln!(
        out,
        "# synthetic {} trace: samples={samples} seed={seed} intensity={with_intensity}",
        kind.label()
    )?;
    writeln!(
        out,
        "# timestamp_hours,utilization{}",
        if with_intensity {
            ",intensity_g_per_kwh"
        } else {
            ""
        }
    )?;
    let mut util_rng = SplitMix(seed ^ 0x7574_696c); // "util"
    let mut grid_rng = SplitMix(seed ^ 0x6772_6964); // "grid"
    let mut util = 0.0;
    let mut util_left = 0u64; // minutes the current block still holds
    let mut g = 0.0;
    let mut g_left = 0u64;
    // Drive-cycle state: 0 = drive, 1 = idle, 2 = charge.
    let mut phase = 1u8;
    for i in 0..samples {
        #[allow(clippy::cast_precision_loss)]
        let t = i as f64 * STEP_HOURS;
        if util_left == 0 {
            match kind {
                SynthKind::Diurnal => {
                    util_left = util_rng.range(5, 45);
                    let noise = (util_rng.uniform() - 0.5) * 0.1;
                    util = quantize_util(daily(&UTIL_TABLE, t) + noise);
                }
                SynthKind::DriveCycle => {
                    phase = (phase + 1) % 3;
                    let (minutes, level) = match phase {
                        0 => (util_rng.range(20, 90), 0.6 + 0.35 * util_rng.uniform()),
                        1 => (util_rng.range(10, 120), 0.02),
                        _ => (util_rng.range(30, 60), 0.10),
                    };
                    util_left = minutes;
                    util = quantize_util(level);
                }
            }
        }
        util_left -= 1;
        if with_intensity {
            if g_left == 0 {
                g_left = grid_rng.range(15, 120);
                let noise = (grid_rng.uniform() - 0.5) * 60.0;
                g = quantize_g(daily(&G_TABLE, t) + noise);
            }
            g_left -= 1;
            writeln!(out, "{t:.6},{util:.4},{g:.1}")?;
        } else {
            writeln!(out, "{t:.6},{util:.4}")?;
        }
    }
    Ok(())
}

/// [`write_csv`] into a `String`.
#[must_use]
pub fn csv_string(kind: SynthKind, samples: usize, seed: u64, with_intensity: bool) -> String {
    let mut out = Vec::new();
    write_csv(&mut out, kind, samples, seed, with_intensity).expect("Vec writes are infallible");
    String::from_utf8(out).expect("generator emits ASCII")
}

/// Generates and ingests in one step — the profile is exactly what a
/// round trip through the text format produces.
///
/// # Panics
///
/// Panics if the generated text fails to ingest (a generator bug).
#[must_use]
pub fn profile(kind: SynthKind, samples: usize, seed: u64, with_intensity: bool) -> TraceProfile {
    TraceReader::new()
        .ingest(csv_string(kind, samples, seed, with_intensity).as_bytes())
        .expect("synthetic traces are well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_seed_deterministic() {
        let a = csv_string(SynthKind::Diurnal, 2000, 7, true);
        let b = csv_string(SynthKind::Diurnal, 2000, 7, true);
        assert_eq!(a, b);
        let c = csv_string(SynthKind::Diurnal, 2000, 8, true);
        assert_ne!(a, c, "different seeds must differ");
        assert_ne!(
            a,
            csv_string(SynthKind::DriveCycle, 2000, 7, true),
            "kinds must differ"
        );
    }

    #[test]
    fn quantized_blocks_compact_well_under_ingest() {
        for kind in SynthKind::ALL {
            let p = profile(kind, 10_000, 42, true);
            assert_eq!(p.samples(), 10_000);
            assert!(
                p.segments() * 4 < p.samples(),
                "{kind:?}: {} segments for {} samples",
                p.segments(),
                p.samples()
            );
            assert!(p.has_intensity());
            let u = p.pricing().mean_utilization;
            assert!(u > 0.0 && u < 1.0, "{kind:?}: {u}");
        }
    }

    #[test]
    fn utilization_only_traces_generate_two_columns() {
        let p = profile(SynthKind::DriveCycle, 500, 3, false);
        assert!(!p.has_intensity());
        assert_eq!(p.pricing().intensity_kg_per_kwh, None);
    }

    #[test]
    fn kind_tokens_round_trip() {
        for kind in SynthKind::ALL {
            assert_eq!(SynthKind::from_token(kind.label()), Some(kind));
        }
        assert_eq!(SynthKind::from_token("drive"), Some(SynthKind::DriveCycle));
        assert_eq!(SynthKind::from_token("warp"), None);
    }
}
