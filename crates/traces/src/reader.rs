//! Chunked streaming ingest ([`TraceReader`]).

use crate::profile::{TraceBuilder, TraceProfile};
use std::fmt;
use std::io::Read;
use std::path::Path;

/// Default streaming chunk size (64 KiB): large enough to amortize
/// syscalls, small enough that the resident ingest footprint is
/// negligible next to the compacted profile.
pub const DEFAULT_CHUNK_BYTES: usize = 64 * 1024;

/// Why a trace could not be ingested.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The underlying reader failed.
    Io(String),
    /// A line is malformed; `line` is 1-based.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What is wrong with it.
        message: String,
    },
    /// Fewer than two samples: a trace needs at least one interval.
    Empty,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Parse { line, message } => write!(f, "line {line}: {message}"),
            TraceError::Empty => {
                write!(f, "a trace needs at least two samples (one interval)")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Streams a trace log through fixed-size chunk buffers into a
/// [`TraceProfile`] — the file is never materialized whole. Resident
/// input memory is one chunk buffer plus a carry buffer for the line
/// split across a chunk boundary; a single line longer than the chunk
/// size is rejected rather than buffered, so the carry (and with it
/// the peak, recorded on the profile) stays bounded by the chunk size.
#[derive(Debug, Clone, Copy)]
pub struct TraceReader {
    chunk_bytes: usize,
}

impl Default for TraceReader {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceReader {
    /// A reader with the default chunk size.
    #[must_use]
    pub fn new() -> Self {
        Self {
            chunk_bytes: DEFAULT_CHUNK_BYTES,
        }
    }

    /// A reader with an explicit chunk size (tests use tiny chunks to
    /// exercise the carry path on every line).
    ///
    /// # Panics
    ///
    /// Panics on a chunk smaller than 64 bytes (one line must fit).
    #[must_use]
    pub fn with_chunk_bytes(chunk_bytes: usize) -> Self {
        assert!(chunk_bytes >= 64, "chunk must hold at least one line");
        Self { chunk_bytes }
    }

    /// The configured chunk size.
    #[must_use]
    pub fn chunk_bytes(&self) -> usize {
        self.chunk_bytes
    }

    /// Ingests a trace log from any byte stream.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] on read failures, [`TraceError::Parse`]
    /// (with a 1-based line number) on malformed lines, and
    /// [`TraceError::Empty`] when fewer than two samples remain.
    pub fn ingest<R: Read>(&self, mut source: R) -> Result<TraceProfile, TraceError> {
        let _obs = tdc_obs::span_timed("trace.ingest", &tdc_obs::metrics::TRACES_INGEST_NS);
        let mut buf = vec![0u8; self.chunk_bytes];
        let mut carry: Vec<u8> = Vec::with_capacity(self.chunk_bytes);
        let mut parser = LineParser::new();
        let mut peak = self.chunk_bytes;
        loop {
            let n = source
                .read(&mut buf)
                .map_err(|e| TraceError::Io(e.to_string()))?;
            if n == 0 {
                break;
            }
            let mut start = 0;
            while let Some(pos) = buf[start..n].iter().position(|b| *b == b'\n') {
                let end = start + pos;
                if carry.is_empty() {
                    parser.feed(&buf[start..end])?;
                } else {
                    carry.extend_from_slice(&buf[start..end]);
                    parser.feed(&carry)?;
                    carry.clear();
                }
                start = end + 1;
            }
            carry.extend_from_slice(&buf[start..n]);
            // The carry never exceeds chunk-sized growth per read; a
            // line that cannot fit one chunk is rejected here, which
            // is what keeps peak residency O(chunk), not O(file).
            if carry.len() > self.chunk_bytes {
                return Err(TraceError::Parse {
                    line: parser.line + 1,
                    message: format!("line exceeds the {} byte chunk size", self.chunk_bytes),
                });
            }
            peak = peak.max(self.chunk_bytes + carry.capacity());
        }
        if !carry.is_empty() {
            parser.feed(&carry)?;
        }
        let profile = parser.finish(peak)?;
        if tdc_obs::enabled() {
            tdc_obs::metrics::TRACES_INGEST_SAMPLES.add(profile.samples() as u64);
        }
        Ok(profile)
    }

    /// Ingests a trace log from a file.
    ///
    /// # Errors
    ///
    /// As [`TraceReader::ingest`], plus [`TraceError::Io`] when the
    /// file cannot be opened.
    pub fn ingest_path(&self, path: &Path) -> Result<TraceProfile, TraceError> {
        let file = std::fs::File::open(path).map_err(|e| TraceError::Io(e.to_string()))?;
        self.ingest(std::io::BufReader::with_capacity(self.chunk_bytes, file))
    }
}

/// Per-line parse state: validates everything the builder would assert
/// on, so ingest reports line-numbered errors instead of panicking.
struct LineParser {
    builder: Option<TraceBuilder>,
    line: usize,
    prev_t: Option<f64>,
}

impl LineParser {
    fn new() -> Self {
        Self {
            builder: None,
            line: 0,
            prev_t: None,
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, TraceError> {
        Err(TraceError::Parse {
            line: self.line,
            message: message.into(),
        })
    }

    fn feed(&mut self, raw: &[u8]) -> Result<(), TraceError> {
        self.line += 1;
        let Ok(text) = std::str::from_utf8(raw) else {
            return self.err("not valid UTF-8");
        };
        let text = text.trim();
        if text.is_empty() || text.starts_with('#') {
            return Ok(());
        }
        let mut fields = text.split(',');
        let t = self.number(fields.next(), "timestamp_hours")?;
        let util = self.number(fields.next(), "utilization")?;
        let intensity = match fields.next() {
            None => None,
            Some(field) => Some(self.parse_field(field, "intensity_g_per_kwh")?),
        };
        if fields.next().is_some() {
            return self.err("expected 2 or 3 comma-separated columns");
        }
        if !t.is_finite() {
            return self.err(format!("timestamp must be finite, got {t}"));
        }
        if let Some(prev) = self.prev_t {
            if t <= prev {
                return self.err(format!(
                    "timestamps must be strictly increasing ({t} after {prev})"
                ));
            }
        }
        if !(0.0..=1.0).contains(&util) {
            return self.err(format!("utilization must be in [0, 1], got {util}"));
        }
        if let Some(g) = intensity {
            if !(g.is_finite() && g >= 0.0) {
                return self.err(format!("intensity must be non-negative, got {g}"));
            }
        }
        let builder = self
            .builder
            .get_or_insert_with(|| TraceBuilder::new(intensity.is_some()));
        if builder.with_intensity() != intensity.is_some() {
            let (expected, got) = if builder.with_intensity() {
                (3, 2)
            } else {
                (2, 3)
            };
            return Err(TraceError::Parse {
                line: self.line,
                message: format!("expected {expected} columns like the first sample, got {got}"),
            });
        }
        builder.push(t, util, intensity);
        self.prev_t = Some(t);
        Ok(())
    }

    fn number(&self, field: Option<&str>, name: &str) -> Result<f64, TraceError> {
        match field {
            None => self.err(format!("missing {name} column")),
            Some(field) => self.parse_field(field, name),
        }
    }

    fn parse_field(&self, field: &str, name: &str) -> Result<f64, TraceError> {
        field.trim().parse::<f64>().map_err(|_| TraceError::Parse {
            line: self.line,
            message: format!("{name}: expected a number, got `{}`", field.trim()),
        })
    }

    fn finish(self, peak_buffer_bytes: usize) -> Result<TraceProfile, TraceError> {
        match self.builder {
            Some(b) if b.samples() >= 2 => Ok(b.build_with_peak(peak_buffer_bytes)),
            _ => Err(TraceError::Empty),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# t_hours,utilization,intensity_g_per_kwh
0.0,0.10,100
4.0,0.10,100

8.0,0.90,500
16.0,0.50,100
24.0,0.0,0
";

    #[test]
    fn three_column_log_parses_with_comments_and_blanks() {
        let p = TraceReader::new().ingest(SAMPLE.as_bytes()).unwrap();
        assert_eq!(p.samples(), 5);
        assert_eq!(p.segments(), 3);
        assert!(p.has_intensity());
        assert!((p.integrals().util_dt - 12.0).abs() < 1e-12);
    }

    #[test]
    fn two_column_log_has_no_intensity() {
        let p = TraceReader::new()
            .ingest("0,0.5\n1,0.5\n2,0.25\n3,0.25\n".as_bytes())
            .unwrap();
        assert!(!p.has_intensity());
        assert_eq!(p.segments(), 2);
        assert_eq!(p.pricing().intensity_kg_per_kwh, None);
    }

    #[test]
    fn tiny_chunks_reproduce_the_one_shot_profile_bitwise() {
        let whole = TraceReader::new().ingest(SAMPLE.as_bytes()).unwrap();
        // 64-byte chunks force the carry path on nearly every line.
        let chunked = TraceReader::with_chunk_bytes(64)
            .ingest(SAMPLE.as_bytes())
            .unwrap();
        assert_eq!(whole, chunked);
        assert_eq!(whole.fingerprint(), chunked.fingerprint());
        assert_eq!(
            whole.pricing().mean_utilization.to_bits(),
            chunked.pricing().mean_utilization.to_bits()
        );
    }

    #[test]
    fn peak_resident_buffering_is_bounded_by_the_chunk_size() {
        // A log much larger than the chunk: residency must not scale
        // with it.
        let mut big = String::new();
        for i in 0..10_000 {
            let util = f64::from(i % 7) / 10.0;
            big.push_str(&format!("{i},{util},{}\n", 100 + i % 400));
        }
        let chunk = 4096;
        let p = TraceReader::with_chunk_bytes(chunk)
            .ingest(big.as_bytes())
            .unwrap();
        assert_eq!(p.samples(), 10_000);
        assert!(
            p.peak_buffer_bytes() <= 3 * chunk,
            "peak {} exceeds 3 chunks of {chunk}",
            p.peak_buffer_bytes()
        );
        assert!(big.len() > 10 * chunk, "the log must dwarf the chunk");
    }

    #[test]
    fn a_line_longer_than_the_chunk_is_rejected_not_buffered() {
        let mut log = String::from("0,0.5\n1,0.5\n");
        log.push_str(&"9".repeat(200));
        let err = TraceReader::with_chunk_bytes(64)
            .ingest(log.as_bytes())
            .unwrap_err();
        assert!(err.to_string().contains("chunk size"), "{err}");
    }

    #[test]
    fn parse_errors_carry_one_based_line_numbers() {
        let err = TraceReader::new()
            .ingest("0,0.5\n1,oops\n".as_bytes())
            .unwrap_err();
        assert_eq!(
            err.to_string(),
            "line 2: utilization: expected a number, got `oops`"
        );
        let err = TraceReader::new()
            .ingest("# header\n0,0.5\n0,0.5\n".as_bytes())
            .unwrap_err();
        assert!(err.to_string().starts_with("line 3:"), "{err}");
        assert!(err.to_string().contains("strictly increasing"), "{err}");
        let err = TraceReader::new().ingest("0,1.5\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("[0, 1]"), "{err}");
        let err = TraceReader::new()
            .ingest("0,0.5,100\n1,0.5\n".as_bytes())
            .unwrap_err();
        assert!(err.to_string().contains("3 columns"), "{err}");
        let err = TraceReader::new()
            .ingest("0,0.5,100,7\n".as_bytes())
            .unwrap_err();
        assert!(err.to_string().contains("2 or 3"), "{err}");
    }

    #[test]
    fn empty_and_single_sample_logs_error_cleanly() {
        for text in ["", "# only a comment\n", "0,0.5\n"] {
            assert_eq!(
                TraceReader::new().ingest(text.as_bytes()).unwrap_err(),
                TraceError::Empty,
                "{text:?}"
            );
        }
    }

    #[test]
    fn missing_file_reports_io() {
        let err = TraceReader::new()
            .ingest_path(Path::new("/nonexistent/trace.csv"))
            .unwrap_err();
        assert!(matches!(err, TraceError::Io(_)));
    }
}
