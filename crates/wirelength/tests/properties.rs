//! Property-based tests for the Rent's-rule substrate.

use proptest::prelude::*;
use tdc_technode::{ProcessNode, TechnologyDb};
use tdc_units::{Area, Bandwidth};
use tdc_wirelength::{
    donath_average_wirelength, onchip_bisection_bandwidth, BeolEstimator, RentParameters,
    WirelengthModel,
};

proptest! {
    #[test]
    fn donath_is_at_least_one_pitch(n in 1.0..1.0e12f64, p in 0.05..0.95f64) {
        let l = donath_average_wirelength(n, p).unwrap();
        prop_assert!(l >= 1.0);
        prop_assert!(l.is_finite());
    }

    #[test]
    fn donath_monotone_in_n_for_super_half_exponents(
        n in 10.0..1.0e10f64,
        factor in 1.1..100.0f64,
        p in 0.55..0.9f64,
    ) {
        let small = donath_average_wirelength(n, p).unwrap();
        let large = donath_average_wirelength(n * factor, p).unwrap();
        prop_assert!(large >= small - 1e-9);
    }

    #[test]
    fn donath_monotone_in_p(n in 100.0..1.0e10f64, p in 0.2..0.85f64) {
        let lo = donath_average_wirelength(n, p).unwrap();
        let hi = donath_average_wirelength(n, p + 0.05).unwrap();
        prop_assert!(hi >= lo - 1e-9);
    }

    #[test]
    fn rent_terminals_power_law_scaling(
        n in 1.0..1.0e10f64,
        k in 2.0..16.0f64,
        p in 0.1..0.9f64,
    ) {
        let rent = RentParameters::new(p, 3.0, 3.0, 0.25).unwrap();
        let ratio = rent.terminals(n * k) / rent.terminals(n);
        prop_assert!((ratio - k.powf(p)).abs() / ratio < 1e-9);
    }

    #[test]
    fn beol_layers_bounded_by_node_stack(
        gates in 1.0e6..5.0e10f64,
        area_scale in 0.5..2.0f64,
    ) {
        let db = TechnologyDb::default();
        let node = db.node(ProcessNode::N7);
        let natural = node.area_for_gates(gates);
        let est = BeolEstimator::default();
        let layers = est.layers(gates, natural * area_scale, node);
        prop_assert!(layers >= 1);
        prop_assert!(layers <= node.max_beol_layers());
    }

    #[test]
    fn beol_raw_demand_monotone_in_gates_at_fixed_area(
        gates in 1.0e7..1.0e10f64,
        factor in 1.1..5.0f64,
    ) {
        let db = TechnologyDb::default();
        let node = db.node(ProcessNode::N7);
        let area = Area::from_mm2(400.0);
        let est = BeolEstimator::default();
        let lo = est.estimate(gates, area, node).unwrap().raw_layers;
        let hi = est.estimate(gates * factor, area, node).unwrap().raw_layers;
        prop_assert!(hi > lo);
    }

    #[test]
    fn wirelength_models_agree_on_small_designs(gates in 10.0..1.0e5f64) {
        // Below the block size, BlockDonath and FlatDonath coincide.
        let block = WirelengthModel::default().average_pitches(gates, 0.66).unwrap();
        let flat = WirelengthModel::FlatDonath.average_pitches(gates, 0.66).unwrap();
        prop_assert!((block - flat).abs() < 1e-12);
    }

    #[test]
    fn bisection_bandwidth_scales_with_wire_rate(
        gates in 1.0e6..1.0e11f64,
        rate in 0.1..20.0f64,
        k in 1.5..10.0f64,
    ) {
        let rent = RentParameters::default();
        let a = onchip_bisection_bandwidth(gates, rent, Bandwidth::from_gbps(rate));
        let b = onchip_bisection_bandwidth(gates, rent, Bandwidth::from_gbps(rate * k));
        prop_assert!((b.total.gbps() / a.total.gbps() - k).abs() < 1e-9);
        prop_assert!((a.wires - b.wires).abs() < 1e-9);
    }
}
