//! Average-wirelength estimation ([`donath_average_wirelength`],
//! [`WirelengthModel`]).

use serde::{Deserialize, Serialize};

/// Donath's hierarchical estimate of the average interconnect length of
/// an `n_gates` random-logic block with Rent exponent `p`, in units of
/// *gate pitches*.
///
/// This is the classical closed form (Donath 1979, as popularized by
/// Davis & Meindl's interconnect-prediction literature and used by the
/// cost model of Stow et al. that the paper cites):
///
/// ```text
///          2    7·(N^(p−0.5) − 1)/(4^(p−0.5) − 1)  −  (1 − N^(p−1.5))/(1 − 4^(p−1.5))
/// L̄(N) = ─── · ─────────────────────────────────────────────────────────────────────
///          9                      (1 − N^(p−1)) / (1 − 4^(p−1))
/// ```
///
/// The form has removable singularities at `p = 0.5` (and the other
/// exponent zeros); we evaluate at a nudged `p` when within `1e-9` of
/// one, which is numerically indistinguishable from the limit.
///
/// Typical magnitudes: ~9 gate pitches for a 50 k-gate block at
/// `p = 0.6`, tens of pitches for 10⁹-gate dice at `p = 0.75` —
/// matching published fits.
///
/// Returns 1.0 (nearest-neighbour wiring) for blocks of ≤ 4 gates, and
/// `None` when `p` ∉ (0, 1) or `n_gates` is not finite.
#[must_use]
pub fn donath_average_wirelength(n_gates: f64, p: f64) -> Option<f64> {
    if p <= 0.0 || p >= 1.0 || !n_gates.is_finite() {
        return None;
    }
    if n_gates <= 4.0 {
        return Some(1.0);
    }
    // Nudge p off the removable singular points of the closed form.
    let mut p = p;
    for singular in [0.5] {
        if (p - singular).abs() < 1e-9 {
            p = singular + 1e-9;
        }
    }
    let n = n_gates;
    let pow = |base: f64, e: f64| base.powf(e);
    let term1 = 7.0 * (pow(n, p - 0.5) - 1.0) / (pow(4.0, p - 0.5) - 1.0);
    let term2 = (1.0 - pow(n, p - 1.5)) / (1.0 - pow(4.0, p - 1.5));
    let denom = (1.0 - pow(n, p - 1.0)) / (1.0 - pow(4.0, p - 1.0));
    let l = (2.0 / 9.0) * (term1 - term2) / denom;
    Some(l.max(1.0))
}

/// Strategy for estimating a die's average interconnect length.
///
/// The BEOL-layer model (Eq. 10) is linear in `L̄`, so the choice of
/// wirelength model is a first-order design decision; all three
/// published styles are available and benchmarked against each other in
/// the ablation suite.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WirelengthModel {
    /// Donath's estimate applied hierarchically: the die is treated as a
    /// sea of place-and-route blocks of `block_gates` gates (modern SoCs
    /// are partitioned; wiring statistics are set by the block scale,
    /// with the few global nets handled by the BEOL estimator's global
    /// correction). `L̄ = donath(min(N, block_gates), p)`.
    BlockDonath {
        /// Gates per place-and-route block (default 2 M).
        block_gates: f64,
    },
    /// Donath's estimate on the flat netlist: `L̄ = donath(N, p)`.
    /// Pessimistic for giant dice but exact for single-block designs.
    FlatDonath,
    /// A plain power law `L̄ = k · N^(p−0.5)` — the asymptotic shape of
    /// Donath's form, for analytical studies.
    PowerLaw {
        /// Prefactor `k` in gate pitches.
        k: f64,
    },
    /// A fixed average length in gate pitches, for calibration against
    /// extracted post-route data.
    Fixed {
        /// Average length in gate pitches.
        pitches: f64,
    },
}

impl Default for WirelengthModel {
    /// One-million-gate blocks: calibrated so a 7 nm logic die lands at
    /// 13–14 of its 15 available metal layers (see `BeolEstimator`).
    fn default() -> Self {
        WirelengthModel::BlockDonath { block_gates: 1.0e6 }
    }
}

impl WirelengthModel {
    /// Average interconnect length, in gate pitches, of an
    /// `n_gates` die with Rent exponent `p`.
    ///
    /// Returns `None` on non-finite inputs or `p` ∉ (0, 1) (where the
    /// underlying estimates are undefined).
    #[must_use]
    pub fn average_pitches(self, n_gates: f64, p: f64) -> Option<f64> {
        if !n_gates.is_finite() || n_gates < 0.0 {
            return None;
        }
        match self {
            WirelengthModel::BlockDonath { block_gates } => {
                donath_average_wirelength(n_gates.min(block_gates), p)
            }
            WirelengthModel::FlatDonath => donath_average_wirelength(n_gates, p),
            WirelengthModel::PowerLaw { k } => {
                if !(p > 0.0 && p < 1.0) || k <= 0.0 {
                    None
                } else {
                    Some((k * n_gates.powf(p - 0.5)).max(1.0))
                }
            }
            WirelengthModel::Fixed { pitches } => {
                if pitches > 0.0 && pitches.is_finite() {
                    Some(pitches)
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn donath_matches_hand_computed_value() {
        // N = 1e6, p = 0.75 → ≈ 34.7 gate pitches (hand-evaluated from
        // the closed form).
        let l = donath_average_wirelength(1.0e6, 0.75).unwrap();
        assert!((l - 34.7).abs() < 0.5, "got {l}");
    }

    #[test]
    fn donath_small_block_value() {
        // N = 50e3, p = 0.6 → ≈ 8.7 gate pitches.
        let l = donath_average_wirelength(5.0e4, 0.6).unwrap();
        assert!((l - 8.7).abs() < 0.3, "got {l}");
    }

    #[test]
    fn donath_grows_with_n_and_p() {
        let mut prev = 0.0;
        for n in [1.0e3, 1.0e4, 1.0e5, 1.0e6, 1.0e8] {
            let l = donath_average_wirelength(n, 0.7).unwrap();
            assert!(l > prev, "L̄ must grow with N (p > 0.5)");
            prev = l;
        }
        let lo = donath_average_wirelength(1.0e6, 0.6).unwrap();
        let hi = donath_average_wirelength(1.0e6, 0.8).unwrap();
        assert!(hi > lo, "L̄ must grow with p");
    }

    #[test]
    fn donath_handles_singular_p_half() {
        let just_below = donath_average_wirelength(1.0e6, 0.5 - 1e-12).unwrap();
        let at = donath_average_wirelength(1.0e6, 0.5).unwrap();
        let just_above = donath_average_wirelength(1.0e6, 0.5 + 1e-12).unwrap();
        assert!((at - just_below).abs() / at < 1e-3);
        assert!((at - just_above).abs() / at < 1e-3);
        assert!(at.is_finite() && at > 1.0);
    }

    #[test]
    fn donath_degenerate_and_invalid_inputs() {
        assert_eq!(donath_average_wirelength(4.0, 0.7), Some(1.0));
        assert_eq!(donath_average_wirelength(0.0, 0.7), Some(1.0));
        assert!(donath_average_wirelength(1.0e6, 0.0).is_none());
        assert!(donath_average_wirelength(1.0e6, 1.0).is_none());
        assert!(donath_average_wirelength(f64::NAN, 0.7).is_none());
    }

    #[test]
    fn block_donath_saturates_at_block_size() {
        let model = WirelengthModel::BlockDonath { block_gates: 1.0e6 };
        let small = model.average_pitches(1.0e5, 0.7).unwrap();
        let at_block = model.average_pitches(1.0e6, 0.7).unwrap();
        let beyond = model.average_pitches(1.0e9, 0.7).unwrap();
        assert!(small < at_block);
        assert!((at_block - beyond).abs() < 1e-12, "saturated beyond block");
    }

    #[test]
    fn flat_donath_keeps_growing() {
        let model = WirelengthModel::FlatDonath;
        let a = model.average_pitches(1.0e6, 0.7).unwrap();
        let b = model.average_pitches(1.0e9, 0.7).unwrap();
        assert!(b > a);
    }

    #[test]
    fn power_law_matches_its_formula() {
        let model = WirelengthModel::PowerLaw { k: 0.9 };
        let l = model.average_pitches(1.0e6, 0.75).unwrap();
        assert!((l - 0.9 * 1.0e6_f64.powf(0.25)).abs() < 1e-9);
        assert!(WirelengthModel::PowerLaw { k: -1.0 }
            .average_pitches(1.0e6, 0.75)
            .is_none());
    }

    #[test]
    fn fixed_model_is_constant() {
        let model = WirelengthModel::Fixed { pitches: 12.0 };
        assert_eq!(model.average_pitches(1.0, 0.7), Some(12.0));
        assert_eq!(model.average_pitches(1.0e12, 0.2), Some(12.0));
        assert!(WirelengthModel::Fixed { pitches: 0.0 }
            .average_pitches(1.0e6, 0.7)
            .is_none());
    }

    #[test]
    fn default_model_is_block_donath_1m() {
        match WirelengthModel::default() {
            WirelengthModel::BlockDonath { block_gates } => {
                assert_eq!(block_gates, 1.0e6);
            }
            other => panic!("unexpected default {other:?}"),
        }
    }
}
