//! On-chip bandwidth estimation ([`onchip_bisection_bandwidth`]).
//!
//! The paper's bandwidth constraint (§3.4) compares a 2.5D IC's
//! die-to-die interface bandwidth against "the on-chip bandwidth of
//! their 2D counterparts". This module estimates that reference: the
//! wires crossing the bisection of the monolithic die, times the
//! per-wire signalling rate.
//!
//! A flat Rent cut badly overestimates the bisection of multi-billion
//! gate SoCs (Rent's rule is only valid in its "region I"); we use the
//! standard two-region form — power law with the internal exponent up
//! to a saturation block size, then the flattened external exponent
//! beyond it.

use crate::rent::RentParameters;
use serde::{Deserialize, Serialize};
use tdc_units::Bandwidth;

/// Gate count at which Rent's rule leaves region I (the classic
/// empirical onset of terminal-count flattening).
const REGION_II_ONSET_GATES: f64 = 1.0e6;

/// A bundle of on-chip wires crossing the bisection, with its
/// aggregate bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnChipLink {
    /// Estimated signal wires crossing the die bisection.
    pub wires: f64,
    /// Signalling rate per wire.
    pub per_wire: Bandwidth,
    /// Aggregate bisection bandwidth.
    pub total: Bandwidth,
}

/// Estimates the on-chip bisection bandwidth of a monolithic die with
/// `n_gates` gates, signalling at `per_wire` per crossing wire
/// (typically the core clock: one bit per cycle per wire).
///
/// Two-region Rent cut:
///
/// * region I (`N/2 ≤ 10⁶`): `wires = t_g · (N/2)^p`
/// * region II: `wires = t_g · 10⁶ᵖ · (N/2 / 10⁶)^p_ext`
///
/// ```
/// use tdc_units::Bandwidth;
/// use tdc_wirelength::{onchip_bisection_bandwidth, RentParameters};
///
/// let link = onchip_bisection_bandwidth(
///     17.0e9,
///     RentParameters::default(),
///     Bandwidth::from_gbps(2.0),
/// );
/// // An Orin-class SoC has tens of TB/s of internal bisection bandwidth.
/// assert!(link.total.tbps() > 100.0 && link.total.tbps() < 2_000.0);
/// ```
#[must_use]
pub fn onchip_bisection_bandwidth(
    n_gates: f64,
    rent: RentParameters,
    per_wire: Bandwidth,
) -> OnChipLink {
    let half = (n_gates / 2.0).max(0.0);
    let wires = if half <= REGION_II_ONSET_GATES {
        rent.terminals(half)
    } else {
        rent.terminals(REGION_II_ONSET_GATES)
            * (half / REGION_II_ONSET_GATES).powf(rent.external_exponent())
    };
    let total = per_wire * wires;
    OnChipLink {
        wires,
        per_wire,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rent() -> RentParameters {
        RentParameters::default()
    }

    #[test]
    fn region_boundary_is_continuous() {
        let per_wire = Bandwidth::from_gbps(2.0);
        let just_below = onchip_bisection_bandwidth(2.0 * (1.0e6 - 1.0), rent(), per_wire);
        let at = onchip_bisection_bandwidth(2.0e6, rent(), per_wire);
        let just_above = onchip_bisection_bandwidth(2.0 * (1.0e6 + 1.0), rent(), per_wire);
        let rel = |a: f64, b: f64| (a - b).abs() / b;
        assert!(rel(just_below.wires, at.wires) < 1e-4);
        assert!(rel(just_above.wires, at.wires) < 1e-4);
    }

    #[test]
    fn bandwidth_grows_monotonically_with_gates() {
        let per_wire = Bandwidth::from_gbps(2.0);
        let mut prev = 0.0;
        for n in [1.0e4, 1.0e6, 1.0e8, 1.0e10] {
            let link = onchip_bisection_bandwidth(n, rent(), per_wire);
            assert!(link.total.gbps() > prev);
            prev = link.total.gbps();
        }
    }

    #[test]
    fn region_two_flattens_growth() {
        let per_wire = Bandwidth::from_gbps(2.0);
        // Growth ratio across ×4 gates inside region I is 4^p…
        let a = onchip_bisection_bandwidth(4.0e5, rent(), per_wire);
        let b = onchip_bisection_bandwidth(1.6e6, rent(), per_wire);
        let region1_ratio = b.wires / a.wires;
        // …and 4^p_ext in region II.
        let c = onchip_bisection_bandwidth(4.0e9, rent(), per_wire);
        let d = onchip_bisection_bandwidth(1.6e10, rent(), per_wire);
        let region2_ratio = d.wires / c.wires;
        assert!(region2_ratio < region1_ratio);
        assert!((region2_ratio - 4.0_f64.powf(rent().external_exponent())).abs() < 1e-6);
    }

    #[test]
    fn aggregate_is_wires_times_rate() {
        let link = onchip_bisection_bandwidth(1.0e8, rent(), Bandwidth::from_gbps(3.0));
        assert!((link.total.gbps() - link.wires * 3.0).abs() < 1e-6);
        assert_eq!(link.per_wire, Bandwidth::from_gbps(3.0));
    }

    #[test]
    fn zero_gates_yields_zero_bandwidth() {
        let link = onchip_bisection_bandwidth(0.0, rent(), Bandwidth::from_gbps(2.0));
        assert_eq!(link.wires, 0.0);
        assert_eq!(link.total, Bandwidth::ZERO);
    }
}
