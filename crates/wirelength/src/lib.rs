//! Rent's-rule wire-length substrate.
//!
//! 3D-Carbon leans on the interconnect-estimation machinery of Stow et
//! al. (ISVLSI'16) in three places, all reproduced here:
//!
//! * **Eq. 10** — the number of BEOL metal layers a die needs,
//!   `N_BEOL = N_fan · ω · N_g · L̄ / (η · A_die)`, where `L̄` is the
//!   average interconnect length. We provide the classical Donath
//!   closed-form estimate plus simpler alternatives ([`WirelengthModel`])
//!   and the full estimator ([`BeolEstimator`]).
//! * **TSV counts** — face-to-back stacking routes inter-tier nets
//!   through TSVs; their count follows a Rent-style cut estimate
//!   ([`RentParameters::cut_terminals`]). Face-to-face stacking only
//!   needs TSVs for external I/O
//!   ([`RentParameters::external_io_count`]).
//! * **On-chip bandwidth** — the paper assumes a 3D IC's die-to-die
//!   bandwidth matches the on-chip bandwidth of the 2D design it
//!   replaces; [`onchip_bisection_bandwidth`] estimates that quantity
//!   from the Rent bisection cut.
//!
//! ```
//! use tdc_technode::{ProcessNode, TechnologyDb};
//! use tdc_units::Area;
//! use tdc_wirelength::BeolEstimator;
//!
//! let db = TechnologyDb::default();
//! let estimator = BeolEstimator::default();
//! let layers = estimator.layers(8.5e9, Area::from_mm2(230.0), db.node(ProcessNode::N7));
//! assert!((8..=15).contains(&layers));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandwidth;
mod beol;
mod donath;
mod rent;

pub use bandwidth::{onchip_bisection_bandwidth, OnChipLink};
pub use beol::{BeolEstimator, RoutingDemand};
pub use donath::{donath_average_wirelength, WirelengthModel};
pub use rent::RentParameters;
