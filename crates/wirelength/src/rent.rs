//! Rent's rule ([`RentParameters`]).

use serde::{Deserialize, Serialize};

/// Parameters of Rent's rule `T = t_g · N^p` and the associated wiring
/// statistics.
///
/// * `exponent` — the Rent exponent `p` (paper Table 2: 0.6–0.8 for the
///   internal wiring region; default 0.66, a typical logic value).
/// * `terminals_per_gate` — the Rent coefficient `t_g` (average
///   terminals of a single gate; default 3.0 for 2-input gates plus
///   output).
/// * `fanout` — average net fanout `N_fan` used by the BEOL demand
///   model (paper Table 2: 1–5; default 3).
/// * `external_exponent` — Rent "region II" exponent governing how the
///   *package-level* I/O count flattens for very large N (default
///   0.25). Real chips expose thousands, not millions, of external
///   signals; the region-II exponent captures that saturation.
///
/// ```
/// use tdc_wirelength::RentParameters;
/// let rent = RentParameters::default();
/// // A 1M-gate block exposes ~t_g · N^p terminals on its boundary.
/// let cut = rent.cut_terminals(1.0e6);
/// assert!(cut > 1.0e3 && cut < 1.0e6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RentParameters {
    exponent: f64,
    terminals_per_gate: f64,
    fanout: f64,
    external_exponent: f64,
}

impl Default for RentParameters {
    fn default() -> Self {
        Self {
            exponent: 0.66,
            terminals_per_gate: 3.0,
            fanout: 3.0,
            external_exponent: 0.25,
        }
    }
}

impl RentParameters {
    /// Creates Rent parameters, validating physical plausibility.
    ///
    /// # Errors
    ///
    /// Returns a descriptive error string when `exponent` ∉ (0, 1),
    /// `terminals_per_gate` ≤ 0, `fanout` ≤ 0, or
    /// `external_exponent` ∉ (0, 1).
    pub fn new(
        exponent: f64,
        terminals_per_gate: f64,
        fanout: f64,
        external_exponent: f64,
    ) -> Result<Self, String> {
        if !(0.0..1.0).contains(&exponent) || exponent == 0.0 {
            return Err(format!("Rent exponent must be in (0, 1), got {exponent}"));
        }
        if !(terminals_per_gate > 0.0 && terminals_per_gate.is_finite()) {
            return Err(format!(
                "terminals per gate must be positive, got {terminals_per_gate}"
            ));
        }
        if !(fanout > 0.0 && fanout.is_finite()) {
            return Err(format!("fanout must be positive, got {fanout}"));
        }
        if !(0.0..1.0).contains(&external_exponent) || external_exponent == 0.0 {
            return Err(format!(
                "external Rent exponent must be in (0, 1), got {external_exponent}"
            ));
        }
        Ok(Self {
            exponent,
            terminals_per_gate,
            fanout,
            external_exponent,
        })
    }

    /// The Rent exponent `p`.
    #[must_use]
    pub fn exponent(self) -> f64 {
        self.exponent
    }

    /// The Rent coefficient `t_g`.
    #[must_use]
    pub fn terminals_per_gate(self) -> f64 {
        self.terminals_per_gate
    }

    /// The average net fanout `N_fan`.
    #[must_use]
    pub fn fanout(self) -> f64 {
        self.fanout
    }

    /// The region-II (external I/O) Rent exponent.
    #[must_use]
    pub fn external_exponent(self) -> f64 {
        self.external_exponent
    }

    /// Returns a copy with a different internal exponent.
    ///
    /// # Panics
    ///
    /// Panics if `p` ∉ (0, 1).
    #[must_use]
    pub fn with_exponent(self, p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "Rent exponent must be in (0,1)");
        Self {
            exponent: p,
            ..self
        }
    }

    /// Returns a copy with a different fanout.
    ///
    /// # Panics
    ///
    /// Panics if `fanout` is not positive and finite.
    #[must_use]
    pub fn with_fanout(self, fanout: f64) -> Self {
        assert!(
            fanout > 0.0 && fanout.is_finite(),
            "fanout must be positive"
        );
        Self { fanout, ..self }
    }

    /// Rent terminal count `T = t_g · N^p` of an `n_gates` block.
    ///
    /// Returns 0 for non-positive gate counts.
    #[must_use]
    pub fn terminals(self, n_gates: f64) -> f64 {
        if n_gates <= 0.0 {
            return 0.0;
        }
        self.terminals_per_gate * n_gates.powf(self.exponent)
    }

    /// Signals crossing the boundary of a partition holding `n_gates`
    /// gates — the F2B inter-tier TSV count of the paper (§3.2.1,
    /// after Stow et al.): a block-level 3D partition cuts exactly the
    /// nets that Rent's rule predicts would leave a block of that size.
    #[must_use]
    pub fn cut_terminals(self, n_gates: f64) -> f64 {
        self.terminals(n_gates)
    }

    /// Signals crossing the *bisection* of an `n_gates` die — the cut
    /// between the two halves, `t_g · (N/2)^p`. Feeds the on-chip
    /// bandwidth estimate.
    #[must_use]
    pub fn bisection_cut(self, n_gates: f64) -> f64 {
        self.terminals(n_gates / 2.0)
    }

    /// External (package-level) I/O count, using the flattened
    /// region-II exponent: `t_g · N^p_ext`. This is the paper's "IO
    /// number" that sets the F2F TSV count.
    #[must_use]
    pub fn external_io_count(self, n_gates: f64) -> f64 {
        if n_gates <= 0.0 {
            return 0.0;
        }
        self.terminals_per_gate * n_gates.powf(self.external_exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_parameters_are_in_paper_ranges() {
        let rent = RentParameters::default();
        assert!((0.6..=0.8).contains(&rent.exponent()));
        assert!((1.0..=5.0).contains(&rent.fanout()));
    }

    #[test]
    fn validation_rejects_nonphysical_values() {
        assert!(RentParameters::new(0.0, 3.0, 3.0, 0.25).is_err());
        assert!(RentParameters::new(1.0, 3.0, 3.0, 0.25).is_err());
        assert!(RentParameters::new(0.7, -3.0, 3.0, 0.25).is_err());
        assert!(RentParameters::new(0.7, 3.0, 0.0, 0.25).is_err());
        assert!(RentParameters::new(0.7, 3.0, 3.0, 1.5).is_err());
        assert!(RentParameters::new(0.7, 3.0, 3.0, 0.25).is_ok());
    }

    #[test]
    fn terminals_follow_power_law() {
        let rent = RentParameters::new(0.5, 2.0, 3.0, 0.25).unwrap();
        assert!((rent.terminals(1.0e6) - 2.0e3).abs() < 1e-9);
        assert_eq!(rent.terminals(0.0), 0.0);
        assert_eq!(rent.terminals(-5.0), 0.0);
    }

    #[test]
    fn cut_grows_sublinearly() {
        let rent = RentParameters::default();
        let small = rent.cut_terminals(1.0e6);
        let large = rent.cut_terminals(4.0e6);
        // 4× the gates should give < 4× the cut (p < 1).
        assert!(large / small < 4.0);
        assert!(large / small > 1.0);
        // Specifically 4^p.
        assert!((large / small - 4.0_f64.powf(0.66)).abs() < 1e-9);
    }

    #[test]
    fn bisection_cut_is_half_block_terminals() {
        let rent = RentParameters::default();
        assert!((rent.bisection_cut(2.0e6) - rent.terminals(1.0e6)).abs() < 1e-9);
    }

    #[test]
    fn external_io_count_is_realistic_for_big_socs() {
        let rent = RentParameters::default();
        // 17 G gates (Orin-class) should expose thousands, not millions,
        // of external signals.
        let ios = rent.external_io_count(17.0e9);
        assert!((1.0e3..1.0e5).contains(&ios), "got {ios}");
        assert!(ios < rent.cut_terminals(17.0e9));
        assert_eq!(rent.external_io_count(0.0), 0.0);
    }

    #[test]
    fn with_builders_panic_on_bad_input() {
        let rent = RentParameters::default();
        assert_eq!(rent.with_exponent(0.7).exponent(), 0.7);
        assert_eq!(rent.with_fanout(4.0).fanout(), 4.0);
        let r = std::panic::catch_unwind(|| rent.with_exponent(1.2));
        assert!(r.is_err());
        let r = std::panic::catch_unwind(|| rent.with_fanout(-1.0));
        assert!(r.is_err());
    }
}
