//! BEOL metal-layer estimation ([`BeolEstimator`]) — the paper's Eq. 10.

use crate::donath::WirelengthModel;
use crate::rent::RentParameters;
use serde::{Deserialize, Serialize};
use tdc_technode::NodeParameters;
use tdc_units::{Area, Length};

/// Estimator for the number of BEOL metal layers a die requires:
///
/// `N_BEOL = ⌈ N_fan · ω · (N_g · L̄_local + N_global · L̄_global) / (η · A_die) ⌉`
///
/// which is the paper's Eq. 10 with an explicit global-net correction:
/// `L̄` from a [`WirelengthModel`] covers the block-local wiring, while
/// a small fraction of nets (`global_net_fraction`) span the die at
/// half-perimeter length. The global term is what makes the estimate
/// *die-size dependent*, so that splitting a die across 3D tiers
/// genuinely saves metal layers — one of the embodied-carbon savings
/// the paper attributes to 3D integration.
///
/// The estimate is clamped to `[1, max_beol_layers]` of the node; the
/// raw demand is exposed through [`RoutingDemand`] (C-INTERMEDIATE).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BeolEstimator {
    rent: RentParameters,
    wirelength: WirelengthModel,
    router_efficiency: f64,
    global_net_fraction: f64,
}

impl Default for BeolEstimator {
    /// Defaults calibrated so a 7 nm logic die (Rent p = 0.66) lands at
    /// ~13–14 of its 15 available layers and a memory-dominated die
    /// (p ≈ 0.45) at 4–6, matching production BEOL stacks.
    fn default() -> Self {
        Self {
            rent: RentParameters::default(),
            wirelength: WirelengthModel::default(),
            router_efficiency: 0.66,
            global_net_fraction: 3.0e-6,
        }
    }
}

/// Intermediate results of a BEOL estimation (see
/// [`BeolEstimator::estimate`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoutingDemand {
    /// Average local interconnect length (physical).
    pub average_wire: Length,
    /// Total local wiring length demanded by all nets.
    pub local_wire_total: Length,
    /// Total global wiring length demanded by the die-spanning nets.
    pub global_wire_total: Length,
    /// Total routing area demand (all layers together).
    pub demand: Area,
    /// Routable area supplied by one metal layer (`η · A_die`).
    pub supply_per_layer: Area,
    /// The unclamped, fractional layer count.
    pub raw_layers: f64,
    /// The final clamped integer layer count.
    pub layers: u32,
}

impl BeolEstimator {
    /// Creates an estimator with explicit sub-models.
    ///
    /// # Errors
    ///
    /// Returns a descriptive error when `router_efficiency` ∉ (0, 1] or
    /// `global_net_fraction` ∉ [0, 1).
    pub fn new(
        rent: RentParameters,
        wirelength: WirelengthModel,
        router_efficiency: f64,
        global_net_fraction: f64,
    ) -> Result<Self, String> {
        if !(router_efficiency > 0.0 && router_efficiency <= 1.0) {
            return Err(format!(
                "router efficiency must be in (0, 1], got {router_efficiency}"
            ));
        }
        if !(0.0..1.0).contains(&global_net_fraction) {
            return Err(format!(
                "global net fraction must be in [0, 1), got {global_net_fraction}"
            ));
        }
        Ok(Self {
            rent,
            wirelength,
            router_efficiency,
            global_net_fraction,
        })
    }

    /// The Rent parameters in use.
    #[must_use]
    pub fn rent(&self) -> RentParameters {
        self.rent
    }

    /// The wirelength model in use.
    #[must_use]
    pub fn wirelength_model(&self) -> WirelengthModel {
        self.wirelength
    }

    /// Returns a copy using different Rent parameters (e.g. a
    /// memory-dominated die with a lower exponent).
    #[must_use]
    pub fn with_rent(mut self, rent: RentParameters) -> Self {
        self.rent = rent;
        self
    }

    /// Returns a copy using a different wirelength model.
    #[must_use]
    pub fn with_wirelength_model(mut self, model: WirelengthModel) -> Self {
        self.wirelength = model;
        self
    }

    /// Full estimation with intermediates.
    ///
    /// Returns `None` when the inputs are non-finite/non-positive or
    /// the wirelength model rejects the Rent exponent.
    #[must_use]
    pub fn estimate(
        &self,
        n_gates: f64,
        die_area: Area,
        node: &NodeParameters,
    ) -> Option<RoutingDemand> {
        if !(n_gates.is_finite() && n_gates > 0.0) {
            return None;
        }
        if !(die_area.mm2().is_finite() && die_area.mm2() > 0.0) {
            return None;
        }
        let pitches = self
            .wirelength
            .average_pitches(n_gates, self.rent.exponent())?;
        let average_wire = node.gate_pitch() * pitches;
        let local_wire_total = average_wire * n_gates;
        // Global nets: a small fraction of all nets, each spanning half
        // the die perimeter (= 2 × edge for a square die).
        let n_global = self.global_net_fraction * n_gates;
        let global_each = die_area.square_side() * 2.0;
        let global_wire_total = global_each * n_global;
        let wire_total = local_wire_total + global_wire_total;
        let demand = Area::from_mm2(self.rent.fanout() * node.wire_pitch().mm() * wire_total.mm());
        let supply_per_layer = die_area * self.router_efficiency;
        let raw_layers = demand.mm2() / supply_per_layer.mm2();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let layers = (raw_layers.ceil().max(1.0) as u32).min(node.max_beol_layers());
        Some(RoutingDemand {
            average_wire,
            local_wire_total,
            global_wire_total,
            demand,
            supply_per_layer,
            raw_layers,
            layers,
        })
    }

    /// Convenience: just the clamped layer count. Degenerate inputs
    /// (zero gates / area) report a single layer.
    #[must_use]
    pub fn layers(&self, n_gates: f64, die_area: Area, node: &NodeParameters) -> u32 {
        self.estimate(n_gates, die_area, node)
            .map_or(1, |d| d.layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdc_technode::{ProcessNode, TechnologyDb};

    fn n7() -> NodeParameters {
        TechnologyDb::shipped_defaults(ProcessNode::N7)
    }

    #[test]
    fn logic_die_lands_near_but_below_node_max() {
        let est = BeolEstimator::default();
        let node = n7();
        // Half-Orin: 8.5 G gates on ~230 mm².
        let area = node.area_for_gates(8.5e9);
        let d = est.estimate(8.5e9, area, &node).unwrap();
        assert!(
            (10..=15).contains(&d.layers),
            "expected 10..=15 layers, got {} (raw {})",
            d.layers,
            d.raw_layers
        );
        assert!(d.layers <= node.max_beol_layers());
    }

    #[test]
    fn memory_die_needs_far_fewer_layers() {
        let node = n7();
        let logic = BeolEstimator::default();
        let memory =
            BeolEstimator::default().with_rent(RentParameters::new(0.45, 3.0, 3.0, 0.25).unwrap());
        let area = node.area_for_gates(4.0e9);
        let l = logic.layers(4.0e9, area, &node);
        let m = memory.layers(4.0e9, area, &node);
        assert!(
            m + 4 <= l,
            "memory ({m}) should need several fewer layers than logic ({l})"
        );
    }

    #[test]
    fn splitting_a_die_saves_layers_via_global_term() {
        let node = n7();
        let est = BeolEstimator::default();
        let full_gates = 17.0e9;
        let full = est
            .estimate(full_gates, node.area_for_gates(full_gates), &node)
            .unwrap();
        let half = est
            .estimate(
                full_gates / 2.0,
                node.area_for_gates(full_gates / 2.0),
                &node,
            )
            .unwrap();
        assert!(
            half.raw_layers < full.raw_layers,
            "half {} !< full {}",
            half.raw_layers,
            full.raw_layers
        );
    }

    #[test]
    fn demand_scales_linearly_with_fanout() {
        let node = n7();
        let base = BeolEstimator::default();
        let doubled = BeolEstimator::new(
            base.rent().with_fanout(base.rent().fanout() * 2.0),
            base.wirelength_model(),
            0.66,
            3.0e-6,
        )
        .unwrap();
        let area = node.area_for_gates(1.0e9);
        let d1 = base.estimate(1.0e9, area, &node).unwrap();
        let d2 = doubled.estimate(1.0e9, area, &node).unwrap();
        assert!((d2.demand.mm2() / d1.demand.mm2() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn estimate_exposes_consistent_intermediates() {
        let node = n7();
        let est = BeolEstimator::default();
        let area = node.area_for_gates(1.0e9);
        let d = est.estimate(1.0e9, area, &node).unwrap();
        // demand = fanout · ω · total wire
        let expect = est.rent().fanout()
            * node.wire_pitch().mm()
            * (d.local_wire_total.mm() + d.global_wire_total.mm());
        assert!((d.demand.mm2() - expect).abs() / expect < 1e-12);
        // supply = η · A
        assert!((d.supply_per_layer.mm2() - area.mm2() * 0.66).abs() < 1e-9);
        assert!((d.raw_layers - d.demand.mm2() / d.supply_per_layer.mm2()).abs() < 1e-12);
    }

    #[test]
    fn clamps_to_node_max() {
        // 28 nm has a scale-free demand above its 10-layer stack; the
        // estimate must clamp rather than report an unbuildable stack.
        let node = TechnologyDb::shipped_defaults(ProcessNode::N28);
        let est = BeolEstimator::default();
        let area = node.area_for_gates(2.0e9);
        let layers = est.layers(2.0e9, area, &node);
        assert_eq!(layers, node.max_beol_layers());
    }

    #[test]
    fn degenerate_inputs_are_rejected_gracefully() {
        let node = n7();
        let est = BeolEstimator::default();
        assert!(est.estimate(0.0, Area::from_mm2(100.0), &node).is_none());
        assert!(est.estimate(1.0e9, Area::ZERO, &node).is_none());
        assert!(est
            .estimate(f64::NAN, Area::from_mm2(100.0), &node)
            .is_none());
        assert_eq!(est.layers(0.0, Area::from_mm2(100.0), &node), 1);
    }

    #[test]
    fn constructor_validates() {
        let rent = RentParameters::default();
        let wl = WirelengthModel::default();
        assert!(BeolEstimator::new(rent, wl, 0.0, 0.0).is_err());
        assert!(BeolEstimator::new(rent, wl, 1.5, 0.0).is_err());
        assert!(BeolEstimator::new(rent, wl, 0.5, 1.0).is_err());
        assert!(BeolEstimator::new(rent, wl, 0.5, 0.0).is_ok());
    }
}
