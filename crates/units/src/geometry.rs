//! Geometric quantities: [`Length`] and [`Area`].
//!
//! Lengths are stored in millimetres, areas in square millimetres.
//! Feature sizes (nanometres), TSV diameters (micrometres), die edges
//! (millimetres) and wafer areas (mm²/cm²) all flow through these two
//! types, so the constructors cover the full range of scales used by
//! the model.

quantity!(
    /// A length, stored canonically in millimetres.
    ///
    /// ```
    /// use tdc_units::Length;
    /// let lambda = Length::from_nm(7.0);
    /// assert!((lambda.mm() - 7.0e-6).abs() < 1e-18);
    /// ```
    Length,
    "mm",
    mm
);

impl Length {
    /// Creates a length from millimetres.
    #[must_use]
    pub const fn from_mm(mm: f64) -> Self {
        Self::new(mm)
    }

    /// Creates a length from micrometres.
    #[must_use]
    pub fn from_um(um: f64) -> Self {
        Self::new(um * 1.0e-3)
    }

    /// Creates a length from nanometres (the natural unit for feature
    /// sizes such as the process node's λ).
    #[must_use]
    pub fn from_nm(nm: f64) -> Self {
        Self::new(nm * 1.0e-6)
    }

    /// Creates a length from centimetres.
    #[must_use]
    pub fn from_cm(cm: f64) -> Self {
        Self::new(cm * 10.0)
    }

    /// Returns the length in micrometres.
    #[must_use]
    pub fn um(self) -> f64 {
        self.mm() * 1.0e3
    }

    /// Returns the length in nanometres.
    #[must_use]
    pub fn nm(self) -> f64 {
        self.mm() * 1.0e6
    }

    /// Returns the length in centimetres.
    #[must_use]
    pub fn cm(self) -> f64 {
        self.mm() * 0.1
    }

    /// Squares the length, yielding an [`Area`].
    ///
    /// ```
    /// use tdc_units::Length;
    /// let edge = Length::from_mm(4.0);
    /// assert_eq!(edge.squared().mm2(), 16.0);
    /// ```
    #[must_use]
    pub fn squared(self) -> Area {
        Area::from_mm2(self.mm() * self.mm())
    }
}

impl core::ops::Mul<Length> for Length {
    type Output = Area;
    fn mul(self, rhs: Length) -> Area {
        Area::from_mm2(self.mm() * rhs.mm())
    }
}

quantity!(
    /// An area, stored canonically in square millimetres.
    ///
    /// Die and package areas are usually quoted in mm²; fab emission
    /// factors are quoted per cm². Both views are provided.
    ///
    /// ```
    /// use tdc_units::Area;
    /// let die = Area::from_mm2(74.0);
    /// assert!((die.cm2() - 0.74).abs() < 1e-12);
    /// ```
    Area,
    "mm²",
    mm2
);

impl Area {
    /// Creates an area from square millimetres.
    #[must_use]
    pub const fn from_mm2(mm2: f64) -> Self {
        Self::new(mm2)
    }

    /// Creates an area from square centimetres.
    #[must_use]
    pub fn from_cm2(cm2: f64) -> Self {
        Self::new(cm2 * 100.0)
    }

    /// Creates an area from square micrometres (TSV cross-sections).
    #[must_use]
    pub fn from_um2(um2: f64) -> Self {
        Self::new(um2 * 1.0e-6)
    }

    /// Returns the area in square centimetres.
    #[must_use]
    pub fn cm2(self) -> f64 {
        self.mm2() * 0.01
    }

    /// Returns the area in square micrometres.
    #[must_use]
    pub fn um2(self) -> f64 {
        self.mm2() * 1.0e6
    }

    /// Side length of the square with this area. Useful for estimating a
    /// die's edge length (`L_edge`) from its area when no aspect ratio is
    /// known, as the paper does for interface I/O pitch counts.
    ///
    /// Returns [`Length::ZERO`] for non-positive areas.
    #[must_use]
    pub fn square_side(self) -> Length {
        if self.mm2() <= 0.0 {
            Length::ZERO
        } else {
            Length::from_mm(self.mm2().sqrt())
        }
    }

    /// Area of a circle with the given diameter (wafer geometry).
    #[must_use]
    pub fn circle_from_diameter(diameter: Length) -> Self {
        let r = diameter.mm() / 2.0;
        Self::from_mm2(core::f64::consts::PI * r * r)
    }

    /// Diameter of the circle with this area (inverse of
    /// [`Area::circle_from_diameter`]). Returns zero for non-positive
    /// areas.
    #[must_use]
    pub fn circle_diameter(self) -> Length {
        if self.mm2() <= 0.0 {
            Length::ZERO
        } else {
            Length::from_mm(2.0 * (self.mm2() / core::f64::consts::PI).sqrt())
        }
    }
}

impl core::ops::Div<Length> for Area {
    type Output = Length;
    fn div(self, rhs: Length) -> Length {
        Length::from_mm(self.mm2() / rhs.mm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn length_unit_conversions_round_trip() {
        let l = Length::from_nm(7.0);
        assert!((l.nm() - 7.0).abs() < EPS);
        assert!((l.um() - 0.007).abs() < EPS);
        assert!((l.mm() - 7.0e-6).abs() < EPS);

        let l = Length::from_um(25.0);
        assert!((l.um() - 25.0).abs() < EPS);

        let l = Length::from_cm(30.0);
        assert!((l.mm() - 300.0).abs() < EPS);
        assert!((l.cm() - 30.0).abs() < EPS);
    }

    #[test]
    fn length_times_length_is_area() {
        let a = Length::from_mm(3.0) * Length::from_mm(4.0);
        assert!((a.mm2() - 12.0).abs() < EPS);
        assert!((Length::from_mm(5.0).squared().mm2() - 25.0).abs() < EPS);
    }

    #[test]
    fn area_unit_conversions_round_trip() {
        let a = Area::from_cm2(0.74);
        assert!((a.mm2() - 74.0).abs() < EPS);
        assert!((a.cm2() - 0.74).abs() < EPS);

        let a = Area::from_um2(1.0e6);
        assert!((a.mm2() - 1.0).abs() < EPS);
        assert!((a.um2() - 1.0e6).abs() < 1e-6);
    }

    #[test]
    fn square_side_inverts_squaring() {
        let edge = Area::from_mm2(144.0).square_side();
        assert!((edge.mm() - 12.0).abs() < EPS);
        assert_eq!(Area::from_mm2(-1.0).square_side(), Length::ZERO);
        assert_eq!(Area::ZERO.square_side(), Length::ZERO);
    }

    #[test]
    fn wafer_circle_geometry() {
        // A 300 mm wafer has area π·150² ≈ 70 685.83 mm².
        let area = Area::circle_from_diameter(Length::from_mm(300.0));
        assert!((area.mm2() - 70_685.834_705_770_35).abs() < 1e-6);
        // Paper Table 2 bounds: 200 mm → 31 415.93 mm², 450 mm → 159 043.13 mm².
        let small = Area::circle_from_diameter(Length::from_mm(200.0));
        assert!((small.mm2() - 31_415.926_535_9).abs() < 1e-1);
        let large = Area::circle_from_diameter(Length::from_mm(450.0));
        assert!((large.mm2() - 159_043.128_088_0).abs() < 1e-1);
    }

    #[test]
    fn circle_diameter_inverts_circle_area() {
        let d = Length::from_mm(300.0);
        let back = Area::circle_from_diameter(d).circle_diameter();
        assert!((back.mm() - 300.0).abs() < 1e-9);
        assert_eq!(Area::ZERO.circle_diameter(), Length::ZERO);
    }

    #[test]
    fn area_divided_by_length_is_length() {
        let l = Area::from_mm2(20.0) / Length::from_mm(4.0);
        assert!((l.mm() - 5.0).abs() < EPS);
    }
}
