//! Internal macro that stamps out the shared surface of every quantity
//! newtype: construction, canonical accessor, ordering helpers, and the
//! dimension-preserving arithmetic (`+`, `-`, scaling by `f64`, and the
//! dimensionless ratio of two like quantities).

/// Defines a quantity newtype over `f64` with a canonical unit.
///
/// `quantity!(Name, "suffix", canonical_accessor)` generates:
///
/// * `Name::ZERO`, `Name::new`, `Name::canonical_accessor()`
/// * `Debug`, `Clone`, `Copy`, `PartialEq`, `PartialOrd`, `Default`,
///   `Display` (value + unit suffix), serde `Serialize`/`Deserialize`
/// * `Add`, `Sub`, `Neg`, `AddAssign`, `SubAssign`, `Sum`
/// * `Mul<f64>`, `Mul<Name> for f64`, `Div<f64>`
/// * `Div<Name> for Name` returning the dimensionless `f64` ratio
/// * `min`/`max`/`abs`/`clamp`/`is_finite` helpers
macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $unit:literal, $accessor:ident
    ) => {
        $(#[$meta])*
        #[derive(
            Debug,
            Clone,
            Copy,
            PartialEq,
            PartialOrd,
            Default,
            serde::Serialize,
            serde::Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a quantity from a raw value expressed in the
            /// canonical unit (see the crate-level unit table).
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            #[doc = concat!("Returns the raw value in ", $unit, ".")]
            #[must_use]
            pub const fn $accessor(self) -> f64 {
                self.0
            }

            /// Returns the smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Clamps the quantity into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi` (mirrors [`f64::clamp`]).
            #[must_use]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// `true` when the underlying value is neither NaN nor infinite.
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// `true` when the underlying value is exactly zero.
            #[must_use]
            pub fn is_zero(self) -> bool {
                self.0 == 0.0
            }

            /// `true` when the underlying value is negative.
            #[must_use]
            pub fn is_negative(self) -> bool {
                self.0 < 0.0
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                if let Some(precision) = f.precision() {
                    write!(f, "{:.*} {}", precision, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::ops::AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl core::ops::Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> core::iter::Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

#[cfg(test)]
mod tests {
    quantity!(
        /// Test-only quantity.
        Widgets,
        "wd",
        count
    );

    #[test]
    fn arithmetic_is_dimension_preserving() {
        let a = Widgets::new(2.0);
        let b = Widgets::new(3.0);
        assert_eq!((a + b).count(), 5.0);
        assert_eq!((b - a).count(), 1.0);
        assert_eq!((-a).count(), -2.0);
        assert_eq!((a * 4.0).count(), 8.0);
        assert_eq!((4.0 * a).count(), 8.0);
        assert_eq!((b / 2.0).count(), 1.5);
        assert_eq!(b / a, 1.5);
    }

    #[test]
    fn assign_ops() {
        let mut a = Widgets::new(1.0);
        a += Widgets::new(2.0);
        assert_eq!(a.count(), 3.0);
        a -= Widgets::new(0.5);
        assert_eq!(a.count(), 2.5);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Widgets = (1..=4).map(|i| Widgets::new(f64::from(i))).sum();
        assert_eq!(total.count(), 10.0);
        let items = [Widgets::new(1.0), Widgets::new(2.0)];
        let total: Widgets = items.iter().sum();
        assert_eq!(total.count(), 3.0);
    }

    #[test]
    fn helpers() {
        let a = Widgets::new(-2.0);
        let b = Widgets::new(3.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.abs().count(), 2.0);
        assert!(a.is_finite());
        assert!(a.is_negative());
        assert!(!b.is_negative());
        assert!(Widgets::ZERO.is_zero());
        assert_eq!(b.clamp(Widgets::ZERO, Widgets::new(1.0)), Widgets::new(1.0));
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{}", Widgets::new(2.5)), "2.5 wd");
        assert_eq!(format!("{:.1}", Widgets::new(2.525)), "2.5 wd");
    }

    #[test]
    fn serde_round_trip_is_transparent() {
        // `#[serde(transparent)]` means a quantity serializes as a bare
        // number; check via the serde test-friendly `serde::Serialize`
        // implementation using a tiny hand-rolled serializer is overkill,
        // so round-trip through `f64` semantics instead.
        let w = Widgets::new(1.25);
        assert_eq!(w.count().to_bits(), 1.25f64.to_bits());
    }
}
