//! The dimensionless [`Ratio`] quantity.

quantity!(
    /// A dimensionless ratio or fraction.
    ///
    /// Used for yields outside the dedicated yield types, scaling factors
    /// (`s_package`, `s_RDL`, `γ_IO`), save ratios, and bandwidth ratios.
    /// A `Ratio` is *not* clamped to `[0, 1]`: scaling factors are ≥ 1
    /// and save ratios may be negative (the paper's Table 5 reports a
    /// −9.59 % "saving" for the silicon interposer).
    ///
    /// ```
    /// use tdc_units::Ratio;
    /// let save = Ratio::from_percent(-9.59);
    /// assert!((save.fraction() + 0.0959).abs() < 1e-12);
    /// assert_eq!(format!("{:.2}", save.as_percent_display()), "-9.59 %");
    /// ```
    Ratio,
    "",
    fraction
);

impl Ratio {
    /// The unit ratio (100 %).
    pub const ONE: Self = Self::new(1.0);

    /// Creates a ratio from a fraction (1.0 == 100 %).
    #[must_use]
    pub const fn from_fraction(fraction: f64) -> Self {
        Self::new(fraction)
    }

    /// Creates a ratio from a percentage (100.0 == 100 %).
    #[must_use]
    pub fn from_percent(percent: f64) -> Self {
        Self::new(percent / 100.0)
    }

    /// Returns the ratio as a percentage.
    #[must_use]
    pub fn percent(self) -> f64 {
        self.fraction() * 100.0
    }

    /// Returns a wrapper whose `Display` shows the value as `xx.x %`.
    #[must_use]
    pub fn as_percent_display(self) -> PercentDisplay {
        PercentDisplay(self)
    }

    /// The complement `1 − self`; e.g. a 20 % degradation leaves 80 % of
    /// the baseline throughput.
    #[must_use]
    pub fn complement(self) -> Self {
        Self::new(1.0 - self.fraction())
    }

    /// Relative change from `baseline` to `new`: `(baseline − new) /
    /// baseline`, i.e. a positive value means `new` is smaller
    /// ("saved"). This is the paper's *carbon save ratio*.
    ///
    /// Returns `None` when `baseline` is zero.
    #[must_use]
    pub fn saving(baseline: f64, new: f64) -> Option<Self> {
        if baseline == 0.0 {
            None
        } else {
            Some(Self::new((baseline - new) / baseline))
        }
    }
}

/// Percent-formatted view of a [`Ratio`] (see
/// [`Ratio::as_percent_display`]).
#[derive(Debug, Clone, Copy)]
pub struct PercentDisplay(Ratio);

impl core::fmt::Display for PercentDisplay {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if let Some(precision) = f.precision() {
            write!(f, "{:.*} %", precision, self.0.percent())
        } else {
            write!(f, "{} %", self.0.percent())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn fraction_percent_round_trip() {
        assert!((Ratio::from_percent(65.53).fraction() - 0.6553).abs() < EPS);
        assert!((Ratio::from_fraction(0.2369).percent() - 23.69).abs() < EPS);
    }

    #[test]
    fn complement() {
        assert!((Ratio::from_percent(20.0).complement().fraction() - 0.8).abs() < EPS);
        assert!((Ratio::ONE.complement().fraction()).abs() < EPS);
    }

    #[test]
    fn saving_matches_paper_convention() {
        // Embodied 2D = 100 kg, 3D = 34.47 kg → 65.53 % saved.
        let s = Ratio::saving(100.0, 34.47).expect("nonzero baseline");
        assert!((s.percent() - 65.53).abs() < 1e-9);
        // A worse design yields a negative saving.
        let s = Ratio::saving(100.0, 109.59).expect("nonzero baseline");
        assert!((s.percent() + 9.59).abs() < 1e-9);
        assert!(Ratio::saving(0.0, 1.0).is_none());
    }

    #[test]
    fn percent_display_formats() {
        let r = Ratio::from_percent(41.034_9);
        assert_eq!(format!("{:.2}", r.as_percent_display()), "41.03 %");
        assert_eq!(
            format!("{}", Ratio::from_fraction(0.5).as_percent_display()),
            "50 %"
        );
    }
}
