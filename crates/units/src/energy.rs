//! Energy-family quantities: [`Energy`], [`Power`], [`EnergyPerArea`],
//! and [`EnergyPerBit`].

use crate::geometry::Area;
use crate::time::TimeSpan;

quantity!(
    /// An amount of energy, stored canonically in kilowatt-hours.
    ///
    /// Fab energy budgets and use-phase consumption are both quoted in
    /// kWh by the industry reports the model is built on; joule-scale
    /// constructors are provided for interface-level quantities.
    ///
    /// ```
    /// use tdc_units::Energy;
    /// let e = Energy::from_joules(3.6e6);
    /// assert!((e.kwh() - 1.0).abs() < 1e-12);
    /// ```
    Energy,
    "kWh",
    kwh
);

/// Joules per kilowatt-hour.
const J_PER_KWH: f64 = 3.6e6;

impl Energy {
    /// Creates an energy from kilowatt-hours.
    #[must_use]
    pub const fn from_kwh(kwh: f64) -> Self {
        Self::new(kwh)
    }

    /// Creates an energy from watt-hours.
    #[must_use]
    pub fn from_wh(wh: f64) -> Self {
        Self::new(wh * 1.0e-3)
    }

    /// Creates an energy from joules.
    #[must_use]
    pub fn from_joules(joules: f64) -> Self {
        Self::new(joules / J_PER_KWH)
    }

    /// Returns the energy in watt-hours.
    #[must_use]
    pub fn wh(self) -> f64 {
        self.kwh() * 1.0e3
    }

    /// Returns the energy in joules.
    #[must_use]
    pub fn joules(self) -> f64 {
        self.kwh() * J_PER_KWH
    }
}

impl core::ops::Div<TimeSpan> for Energy {
    type Output = Power;
    fn div(self, rhs: TimeSpan) -> Power {
        Power::from_watts(self.wh() / rhs.hours())
    }
}

quantity!(
    /// Electrical power, stored canonically in watts.
    ///
    /// ```
    /// use tdc_units::{Power, TimeSpan};
    /// let e = Power::from_watts(250.0) * TimeSpan::from_hours(4.0);
    /// assert!((e.kwh() - 1.0).abs() < 1e-12);
    /// ```
    Power,
    "W",
    watts
);

impl Power {
    /// Creates a power from watts.
    #[must_use]
    pub const fn from_watts(watts: f64) -> Self {
        Self::new(watts)
    }

    /// Creates a power from milliwatts.
    #[must_use]
    pub fn from_mw(mw: f64) -> Self {
        Self::new(mw * 1.0e-3)
    }

    /// Creates a power from kilowatts.
    #[must_use]
    pub fn from_kw(kw: f64) -> Self {
        Self::new(kw * 1.0e3)
    }

    /// Returns the power in milliwatts.
    #[must_use]
    pub fn mw(self) -> f64 {
        self.watts() * 1.0e3
    }

    /// Returns the power in kilowatts.
    #[must_use]
    pub fn kw(self) -> f64 {
        self.watts() * 1.0e-3
    }
}

impl core::ops::Mul<TimeSpan> for Power {
    type Output = Energy;
    fn mul(self, rhs: TimeSpan) -> Energy {
        Energy::from_wh(self.watts() * rhs.hours())
    }
}

impl core::ops::Mul<Power> for TimeSpan {
    type Output = Energy;
    fn mul(self, rhs: Power) -> Energy {
        rhs * self
    }
}

quantity!(
    /// Energy consumed per unit of processed area, stored canonically in
    /// kWh per cm². This is the `EPA` of the paper's Eq. (6): fab energy
    /// per unit wafer area, and the bonding energy per unit area of
    /// Eq. (11).
    ///
    /// ```
    /// use tdc_units::{Area, EnergyPerArea};
    /// let epa = EnergyPerArea::from_kwh_per_cm2(0.8);
    /// let e = epa * Area::from_cm2(100.0);
    /// assert!((e.kwh() - 80.0).abs() < 1e-12);
    /// ```
    EnergyPerArea,
    "kWh/cm²",
    kwh_per_cm2
);

impl EnergyPerArea {
    /// Creates an energy-per-area from kWh per cm².
    #[must_use]
    pub const fn from_kwh_per_cm2(value: f64) -> Self {
        Self::new(value)
    }
}

impl core::ops::Mul<Area> for EnergyPerArea {
    type Output = Energy;
    fn mul(self, rhs: Area) -> Energy {
        Energy::from_kwh(self.kwh_per_cm2() * rhs.cm2())
    }
}

impl core::ops::Mul<EnergyPerArea> for Area {
    type Output = Energy;
    fn mul(self, rhs: EnergyPerArea) -> Energy {
        rhs * self
    }
}

quantity!(
    /// Energy spent moving one bit across a die-to-die interface, stored
    /// canonically in joules per bit. The integration-technology catalog
    /// quotes these in fJ/bit (on-die, 3D) up to nJ/bit (package-level).
    ///
    /// Multiplying by a [`Bandwidth`](crate::Bandwidth) yields the
    /// interface [`Power`]:
    ///
    /// ```
    /// use tdc_units::{Bandwidth, EnergyPerBit};
    /// let pj = EnergyPerBit::from_pj_per_bit(1.0);
    /// let p = pj * Bandwidth::from_gbps(1_000.0); // 1 Tb/s at 1 pJ/b
    /// assert!((p.watts() - 1.0).abs() < 1e-12);
    /// ```
    EnergyPerBit,
    "J/bit",
    joules_per_bit
);

impl EnergyPerBit {
    /// Creates an energy-per-bit from joules per bit.
    #[must_use]
    pub const fn from_joules_per_bit(value: f64) -> Self {
        Self::new(value)
    }

    /// Creates an energy-per-bit from femtojoules per bit.
    #[must_use]
    pub fn from_fj_per_bit(fj: f64) -> Self {
        Self::new(fj * 1.0e-15)
    }

    /// Creates an energy-per-bit from picojoules per bit.
    #[must_use]
    pub fn from_pj_per_bit(pj: f64) -> Self {
        Self::new(pj * 1.0e-12)
    }

    /// Returns the value in femtojoules per bit.
    #[must_use]
    pub fn fj_per_bit(self) -> f64 {
        self.joules_per_bit() * 1.0e15
    }

    /// Returns the value in picojoules per bit.
    #[must_use]
    pub fn pj_per_bit(self) -> f64 {
        self.joules_per_bit() * 1.0e12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::Bandwidth;

    const EPS: f64 = 1e-12;

    #[test]
    fn energy_conversions() {
        assert!((Energy::from_kwh(2.0).wh() - 2_000.0).abs() < EPS);
        assert!((Energy::from_wh(500.0).kwh() - 0.5).abs() < EPS);
        assert!((Energy::from_joules(J_PER_KWH).kwh() - 1.0).abs() < EPS);
        assert!((Energy::from_kwh(1.0).joules() - J_PER_KWH).abs() < EPS);
    }

    #[test]
    fn power_conversions() {
        assert!((Power::from_mw(1_500.0).watts() - 1.5).abs() < EPS);
        assert!((Power::from_kw(0.25).watts() - 250.0).abs() < EPS);
        assert!((Power::from_watts(2.0).mw() - 2_000.0).abs() < EPS);
        assert!((Power::from_watts(2_000.0).kw() - 2.0).abs() < EPS);
    }

    #[test]
    fn power_times_time_is_energy() {
        let e = Power::from_watts(100.0) * TimeSpan::from_hours(10.0);
        assert!((e.kwh() - 1.0).abs() < EPS);
        // Commutes.
        let e2 = TimeSpan::from_hours(10.0) * Power::from_watts(100.0);
        assert!((e2.kwh() - 1.0).abs() < EPS);
    }

    #[test]
    fn energy_over_time_is_power() {
        let p = Energy::from_kwh(1.0) / TimeSpan::from_hours(10.0);
        assert!((p.watts() - 100.0).abs() < EPS);
    }

    #[test]
    fn energy_per_area_times_area() {
        // The paper's wafer-level fab energy: EPA · A_wafer.
        let epa = EnergyPerArea::from_kwh_per_cm2(0.8);
        let wafer = Area::from_mm2(70_685.83);
        let e = epa * wafer;
        assert!((e.kwh() - 565.486_64).abs() < 1e-3);
        let e2 = wafer * epa;
        assert!((e2.kwh() - e.kwh()).abs() < EPS);
    }

    #[test]
    fn energy_per_bit_scales() {
        let e = EnergyPerBit::from_fj_per_bit(120.0);
        assert!((e.fj_per_bit() - 120.0).abs() < 1e-9);
        assert!((e.pj_per_bit() - 0.12).abs() < 1e-12);
        let p = e * Bandwidth::from_gbps(1_000.0);
        // 120 fJ/bit * 1e12 bit/s = 0.12 W
        assert!((p.watts() - 0.12).abs() < EPS);
    }
}
