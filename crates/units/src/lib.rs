//! Dimensioned quantity newtypes for IC carbon modeling.
//!
//! Every physically meaningful number that flows through the 3D-Carbon
//! model is wrapped in a dedicated newtype so that, e.g., an energy per
//! unit area can never be accidentally added to a carbon mass. The types
//! follow the newtype guidance of the Rust API guidelines (C-NEWTYPE):
//! each quantity stores one `f64` in a fixed canonical unit and exposes
//! explicit, named constructors and accessors for every supported unit.
//!
//! Cross-dimension arithmetic is implemented only where the model needs
//! it and always produces the correct result dimension:
//!
//! ```
//! use tdc_units::{Power, TimeSpan, CarbonIntensity};
//!
//! let power = Power::from_watts(30.0);
//! let lifetime = TimeSpan::from_years(10.0);
//! let grid = CarbonIntensity::from_g_per_kwh(475.0);
//!
//! let energy = power * lifetime;           // -> Energy
//! let carbon = grid * energy;              // -> Co2Mass
//! assert!((carbon.kg() - 1_249.155).abs() < 1e-6);
//! ```
//!
//! # Canonical units
//!
//! | Quantity | Canonical unit |
//! |----------|----------------|
//! | [`Length`] | millimetre |
//! | [`Area`] | square millimetre |
//! | [`Energy`] | kilowatt-hour |
//! | [`Power`] | watt |
//! | [`TimeSpan`] | hour |
//! | [`Co2Mass`] | kilogram CO₂e |
//! | [`CarbonIntensity`] | kg CO₂e per kWh |
//! | [`EnergyPerArea`] | kWh per cm² |
//! | [`CarbonPerArea`] | kg CO₂e per cm² |
//! | [`Co2Rate`] | kg CO₂e per hour |
//! | [`EnergyPerBit`] | joule per bit |
//! | [`Throughput`] | tera-operations per second (TOPS) |
//! | [`Efficiency`] | TOPS per watt |
//! | [`Bandwidth`] | gigabit per second |
//! | [`Ratio`] | dimensionless fraction |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[macro_use]
mod macros;

mod carbon;
mod compute;
mod energy;
mod geometry;
mod ratio;
mod time;

pub use carbon::{CarbonIntensity, CarbonPerArea, Co2Mass, Co2Rate};
pub use compute::{Bandwidth, Efficiency, Throughput};
pub use energy::{Energy, EnergyPerArea, EnergyPerBit, Power};
pub use geometry::{Area, Length};
pub use ratio::{PercentDisplay, Ratio};
pub use time::TimeSpan;
