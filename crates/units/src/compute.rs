//! Compute-facing quantities: [`Throughput`], [`Efficiency`], and
//! [`Bandwidth`].

use crate::energy::{EnergyPerBit, Power};

quantity!(
    /// Computational throughput, stored canonically in TOPS
    /// (tera-operations per second).
    ///
    /// The model's operational phase is *fixed-throughput* (Eq. 16–17):
    /// the application demands `Th_app` TOPS and the die delivers it at
    /// some [`Efficiency`], giving a [`Power`]:
    ///
    /// ```
    /// use tdc_units::{Throughput, Efficiency};
    /// let th = Throughput::from_tops(254.0);
    /// let eff = Efficiency::from_tops_per_watt(2.74);
    /// let p = th / eff;
    /// assert!((p.watts() - 92.7).abs() < 0.1);
    /// ```
    Throughput,
    "TOPS",
    tops
);

impl Throughput {
    /// Creates a throughput from TOPS.
    #[must_use]
    pub const fn from_tops(tops: f64) -> Self {
        Self::new(tops)
    }

    /// Creates a throughput from GOPS (giga-operations per second).
    #[must_use]
    pub fn from_gops(gops: f64) -> Self {
        Self::new(gops * 1.0e-3)
    }

    /// Returns the throughput in GOPS.
    #[must_use]
    pub fn gops(self) -> f64 {
        self.tops() * 1.0e3
    }
}

impl core::ops::Div<Efficiency> for Throughput {
    type Output = Power;
    /// `Th / Eff` — the compute-power term of the paper's Eq. (17).
    fn div(self, rhs: Efficiency) -> Power {
        Power::from_watts(self.tops() / rhs.tops_per_watt())
    }
}

impl core::ops::Div<Power> for Throughput {
    type Output = Efficiency;
    fn div(self, rhs: Power) -> Efficiency {
        Efficiency::from_tops_per_watt(self.tops() / rhs.watts())
    }
}

quantity!(
    /// Energy efficiency of a compute die, stored canonically in TOPS
    /// per watt. The survey values of the paper's Table 4 (0.75 for
    /// DRIVE PX 2 up to 12.5 for Thor) live here.
    Efficiency,
    "TOPS/W",
    tops_per_watt
);

impl Efficiency {
    /// Creates an efficiency from TOPS per watt.
    #[must_use]
    pub const fn from_tops_per_watt(value: f64) -> Self {
        Self::new(value)
    }
}

impl core::ops::Mul<Power> for Efficiency {
    type Output = Throughput;
    fn mul(self, rhs: Power) -> Throughput {
        Throughput::from_tops(self.tops_per_watt() * rhs.watts())
    }
}

impl core::ops::Mul<Efficiency> for Power {
    type Output = Throughput;
    fn mul(self, rhs: Efficiency) -> Throughput {
        rhs * self
    }
}

quantity!(
    /// Data-movement bandwidth, stored canonically in Gb/s.
    ///
    /// Used both for per-lane data rates (Fig. 2: 3.2–15 Gb/s per I/O)
    /// and for aggregate die-to-die bandwidths (Eq. 18), which reach
    /// tens of Tb/s.
    ///
    /// ```
    /// use tdc_units::Bandwidth;
    /// let per_io = Bandwidth::from_gbps(6.4);
    /// let total = per_io * 2_000.0; // 2 000 I/Os
    /// assert!((total.tbps() - 12.8).abs() < 1e-12);
    /// ```
    Bandwidth,
    "Gb/s",
    gbps
);

impl Bandwidth {
    /// Creates a bandwidth from gigabits per second.
    #[must_use]
    pub const fn from_gbps(gbps: f64) -> Self {
        Self::new(gbps)
    }

    /// Creates a bandwidth from terabits per second.
    #[must_use]
    pub fn from_tbps(tbps: f64) -> Self {
        Self::new(tbps * 1.0e3)
    }

    /// Creates a bandwidth from gigabytes per second (8 bits per byte).
    #[must_use]
    pub fn from_gbytes_per_s(gbs: f64) -> Self {
        Self::new(gbs * 8.0)
    }

    /// Returns the bandwidth in terabits per second.
    #[must_use]
    pub fn tbps(self) -> f64 {
        self.gbps() * 1.0e-3
    }

    /// Returns the bandwidth in gigabytes per second.
    #[must_use]
    pub fn gbytes_per_s(self) -> f64 {
        self.gbps() / 8.0
    }

    /// Returns the bandwidth in bits per second.
    #[must_use]
    pub fn bits_per_s(self) -> f64 {
        self.gbps() * 1.0e9
    }
}

impl core::ops::Mul<Bandwidth> for EnergyPerBit {
    type Output = Power;
    /// Interface power: energy-per-bit × bit-rate.
    fn mul(self, rhs: Bandwidth) -> Power {
        Power::from_watts(self.joules_per_bit() * rhs.bits_per_s())
    }
}

impl core::ops::Mul<EnergyPerBit> for Bandwidth {
    type Output = Power;
    fn mul(self, rhs: EnergyPerBit) -> Power {
        rhs * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn throughput_conversions() {
        assert!((Throughput::from_gops(2_000.0).tops() - 2.0).abs() < EPS);
        assert!((Throughput::from_tops(1.5).gops() - 1_500.0).abs() < EPS);
    }

    #[test]
    fn fixed_throughput_power_eq17() {
        // Orin-like: 254 TOPS requirement at 2.74 TOPS/W → ~92.7 W.
        let p = Throughput::from_tops(254.0) / Efficiency::from_tops_per_watt(2.74);
        assert!((p.watts() - 92.700_729_927).abs() < 1e-6);
    }

    #[test]
    fn efficiency_power_throughput_triangle() {
        let eff = Efficiency::from_tops_per_watt(2.0);
        let p = Power::from_watts(50.0);
        let th = eff * p;
        assert!((th.tops() - 100.0).abs() < EPS);
        let th2 = p * eff;
        assert!((th2.tops() - th.tops()).abs() < EPS);
        let back = th / p;
        assert!((back.tops_per_watt() - 2.0).abs() < EPS);
    }

    #[test]
    fn bandwidth_conversions() {
        assert!((Bandwidth::from_tbps(1.0).gbps() - 1_000.0).abs() < EPS);
        assert!((Bandwidth::from_gbytes_per_s(10.0).gbps() - 80.0).abs() < EPS);
        assert!((Bandwidth::from_gbps(80.0).gbytes_per_s() - 10.0).abs() < EPS);
        assert!((Bandwidth::from_gbps(1.0).bits_per_s() - 1.0e9).abs() < EPS);
    }

    #[test]
    fn interface_power_from_bandwidth() {
        // HBM-style link: 250 fJ/bit at 4 Tb/s → 1 W.
        let p = EnergyPerBit::from_fj_per_bit(250.0) * Bandwidth::from_tbps(4.0);
        assert!((p.watts() - 1.0).abs() < EPS);
        let p2 = Bandwidth::from_tbps(4.0) * EnergyPerBit::from_fj_per_bit(250.0);
        assert!((p2.watts() - p.watts()).abs() < EPS);
    }
}
