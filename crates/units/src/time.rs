//! The [`TimeSpan`] quantity.

/// Hours in a mean Gregorian year (365.25 days × 24 h).
///
/// Used consistently for year↔hour conversions so that lifetime
/// arithmetic (10-year AV lifetimes, multi-decade breakeven times)
/// round-trips exactly.
pub(crate) const HOURS_PER_YEAR: f64 = 8_766.0;

quantity!(
    /// A span of time, stored canonically in hours.
    ///
    /// Application run-times (`T_app`), device lifetimes (`T_life`), and
    /// the decision metrics `T_c` / `T_r` are all `TimeSpan`s. The
    /// paper's sustainability metrics can be *infinite* (a 3D/2.5D IC
    /// that never pays back); this is represented honestly as
    /// `TimeSpan::INFINITE` rather than a sentinel.
    ///
    /// ```
    /// use tdc_units::TimeSpan;
    /// let life = TimeSpan::from_years(10.0);
    /// assert!((life.hours() - 87_660.0).abs() < 1e-9);
    /// assert!(life < TimeSpan::INFINITE);
    /// ```
    TimeSpan,
    "h",
    hours
);

impl TimeSpan {
    /// A span longer than any finite span; the value of `T_c`/`T_r`
    /// when the compared designs never trade places.
    pub const INFINITE: Self = Self::new(f64::INFINITY);

    /// Creates a span from hours.
    #[must_use]
    pub const fn from_hours(hours: f64) -> Self {
        Self::new(hours)
    }

    /// Creates a span from seconds.
    #[must_use]
    pub fn from_seconds(seconds: f64) -> Self {
        Self::new(seconds / 3_600.0)
    }

    /// Creates a span from days (24 h).
    #[must_use]
    pub fn from_days(days: f64) -> Self {
        Self::new(days * 24.0)
    }

    /// Creates a span from mean years (8 766 h).
    #[must_use]
    pub fn from_years(years: f64) -> Self {
        Self::new(years * HOURS_PER_YEAR)
    }

    /// Returns the span in seconds.
    #[must_use]
    pub fn seconds(self) -> f64 {
        self.hours() * 3_600.0
    }

    /// Returns the span in days.
    #[must_use]
    pub fn days(self) -> f64 {
        self.hours() / 24.0
    }

    /// Returns the span in mean years.
    #[must_use]
    pub fn years(self) -> f64 {
        self.hours() / HOURS_PER_YEAR
    }

    /// `true` when the span is infinite (never reached).
    #[must_use]
    pub fn is_infinite(self) -> bool {
        self.hours().is_infinite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn conversions_round_trip() {
        assert!((TimeSpan::from_seconds(7_200.0).hours() - 2.0).abs() < EPS);
        assert!((TimeSpan::from_days(2.0).hours() - 48.0).abs() < EPS);
        assert!((TimeSpan::from_years(1.0).hours() - 8_766.0).abs() < EPS);
        assert!((TimeSpan::from_hours(8_766.0).years() - 1.0).abs() < EPS);
        assert!((TimeSpan::from_hours(24.0).days() - 1.0).abs() < EPS);
        assert!((TimeSpan::from_hours(1.0).seconds() - 3_600.0).abs() < EPS);
    }

    #[test]
    fn infinite_sentinel_behaves() {
        assert!(TimeSpan::INFINITE.is_infinite());
        assert!(!TimeSpan::from_years(100.0).is_infinite());
        assert!(TimeSpan::from_years(1.0e6) < TimeSpan::INFINITE);
        // Infinity survives addition with finite values.
        assert!((TimeSpan::INFINITE + TimeSpan::from_hours(1.0)).is_infinite());
    }

    #[test]
    fn ten_year_av_lifetime() {
        // The case study uses a 10-year autonomous-vehicle lifetime.
        let life = TimeSpan::from_years(10.0);
        assert!((life.days() - 3_652.5).abs() < EPS);
    }
}
