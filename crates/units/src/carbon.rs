//! Carbon-accounting quantities: [`Co2Mass`], [`CarbonIntensity`],
//! [`CarbonPerArea`], and [`Co2Rate`].

use crate::energy::{Energy, EnergyPerArea, Power};
use crate::geometry::Area;
use crate::time::TimeSpan;

quantity!(
    /// A mass of emitted CO₂-equivalent, stored canonically in kilograms.
    ///
    /// This is the output currency of the whole model: embodied and
    /// operational footprints, savings, and breakdowns are all `Co2Mass`.
    ///
    /// ```
    /// use tdc_units::Co2Mass;
    /// let total = Co2Mass::from_kg(18.0) + Co2Mass::from_g(500.0);
    /// assert!((total.kg() - 18.5).abs() < 1e-12);
    /// ```
    Co2Mass,
    "kg CO₂e",
    kg
);

impl Co2Mass {
    /// Creates a carbon mass from kilograms of CO₂-equivalent.
    #[must_use]
    pub const fn from_kg(kg: f64) -> Self {
        Self::new(kg)
    }

    /// Creates a carbon mass from grams of CO₂-equivalent.
    #[must_use]
    pub fn from_g(g: f64) -> Self {
        Self::new(g * 1.0e-3)
    }

    /// Creates a carbon mass from (metric) tonnes of CO₂-equivalent.
    #[must_use]
    pub fn from_tonnes(t: f64) -> Self {
        Self::new(t * 1.0e3)
    }

    /// Returns the mass in grams.
    #[must_use]
    pub fn g(self) -> f64 {
        self.kg() * 1.0e3
    }

    /// Returns the mass in metric tonnes.
    #[must_use]
    pub fn tonnes(self) -> f64 {
        self.kg() * 1.0e-3
    }
}

impl core::ops::Div<Co2Rate> for Co2Mass {
    type Output = TimeSpan;
    /// A carbon mass divided by a carbon-emission rate is the time it
    /// takes that rate to emit the mass — exactly the shape of the
    /// paper's indifference-point and breakeven metrics (Eq. 2).
    fn div(self, rhs: Co2Rate) -> TimeSpan {
        TimeSpan::from_hours(self.kg() / rhs.kg_per_hour())
    }
}

quantity!(
    /// Carbon intensity of an electrical grid, stored canonically in
    /// kilograms of CO₂-equivalent per kilowatt-hour.
    ///
    /// Grid reports quote grams per kWh (30–700 g CO₂/kWh in the paper's
    /// Table 2), hence the gram-based constructor:
    ///
    /// ```
    /// use tdc_units::{CarbonIntensity, Energy};
    /// let taiwan = CarbonIntensity::from_g_per_kwh(509.0);
    /// let carbon = taiwan * Energy::from_kwh(1_000.0);
    /// assert!((carbon.kg() - 509.0).abs() < 1e-9);
    /// ```
    CarbonIntensity,
    "kg CO₂e/kWh",
    kg_per_kwh
);

impl CarbonIntensity {
    /// Creates a carbon intensity from kg CO₂e per kWh.
    #[must_use]
    pub const fn from_kg_per_kwh(value: f64) -> Self {
        Self::new(value)
    }

    /// Creates a carbon intensity from g CO₂e per kWh (the common
    /// reporting unit).
    #[must_use]
    pub fn from_g_per_kwh(value: f64) -> Self {
        Self::new(value * 1.0e-3)
    }

    /// Returns the intensity in g CO₂e per kWh.
    #[must_use]
    pub fn g_per_kwh(self) -> f64 {
        self.kg_per_kwh() * 1.0e3
    }
}

impl core::ops::Mul<Energy> for CarbonIntensity {
    type Output = Co2Mass;
    fn mul(self, rhs: Energy) -> Co2Mass {
        Co2Mass::from_kg(self.kg_per_kwh() * rhs.kwh())
    }
}

impl core::ops::Mul<CarbonIntensity> for Energy {
    type Output = Co2Mass;
    fn mul(self, rhs: CarbonIntensity) -> Co2Mass {
        rhs * self
    }
}

impl core::ops::Mul<EnergyPerArea> for CarbonIntensity {
    type Output = CarbonPerArea;
    /// `CI_emb · EPA` — the electricity term of the per-area wafer
    /// footprint in Eq. (6).
    fn mul(self, rhs: EnergyPerArea) -> CarbonPerArea {
        CarbonPerArea::from_kg_per_cm2(self.kg_per_kwh() * rhs.kwh_per_cm2())
    }
}

impl core::ops::Mul<CarbonIntensity> for EnergyPerArea {
    type Output = CarbonPerArea;
    fn mul(self, rhs: CarbonIntensity) -> CarbonPerArea {
        rhs * self
    }
}

impl core::ops::Mul<Power> for CarbonIntensity {
    type Output = Co2Rate;
    /// `CI_use · P` — the steady-state emission rate of a device in use;
    /// the denominator of the paper's Eq. (2).
    fn mul(self, rhs: Power) -> Co2Rate {
        Co2Rate::from_kg_per_hour(self.kg_per_kwh() * rhs.kw())
    }
}

impl core::ops::Mul<CarbonIntensity> for Power {
    type Output = Co2Rate;
    fn mul(self, rhs: CarbonIntensity) -> Co2Rate {
        rhs * self
    }
}

quantity!(
    /// Carbon emitted per unit of processed area, stored canonically in
    /// kg CO₂e per cm². This covers the paper's `GPA` (fab gas emissions
    /// per area), `MPA` (raw material footprint per area), and `CPA`
    /// (packaging carbon per area) parameters.
    ///
    /// ```
    /// use tdc_units::{Area, CarbonPerArea};
    /// let gpa = CarbonPerArea::from_kg_per_cm2(0.15);
    /// let c = gpa * Area::from_cm2(10.0);
    /// assert!((c.kg() - 1.5).abs() < 1e-12);
    /// ```
    CarbonPerArea,
    "kg CO₂e/cm²",
    kg_per_cm2
);

impl CarbonPerArea {
    /// Creates a carbon-per-area from kg CO₂e per cm².
    #[must_use]
    pub const fn from_kg_per_cm2(value: f64) -> Self {
        Self::new(value)
    }

    /// Creates a carbon-per-area from g CO₂e per cm².
    #[must_use]
    pub fn from_g_per_cm2(value: f64) -> Self {
        Self::new(value * 1.0e-3)
    }
}

impl core::ops::Mul<Area> for CarbonPerArea {
    type Output = Co2Mass;
    fn mul(self, rhs: Area) -> Co2Mass {
        Co2Mass::from_kg(self.kg_per_cm2() * rhs.cm2())
    }
}

impl core::ops::Mul<CarbonPerArea> for Area {
    type Output = Co2Mass;
    fn mul(self, rhs: CarbonPerArea) -> Co2Mass {
        rhs * self
    }
}

quantity!(
    /// A rate of carbon emission, stored canonically in kg CO₂e per hour.
    ///
    /// Produced by `CarbonIntensity * Power`; dividing a [`Co2Mass`] by a
    /// `Co2Rate` yields the [`TimeSpan`] needed to emit it, which is how
    /// the indifference point `T_c` and breakeven time `T_r` fall out of
    /// the type system.
    Co2Rate,
    "kg CO₂e/h",
    kg_per_hour
);

impl Co2Rate {
    /// Creates a rate from kg CO₂e per hour.
    #[must_use]
    pub const fn from_kg_per_hour(value: f64) -> Self {
        Self::new(value)
    }

    /// Creates a rate from kg CO₂e per year (8 766 h: the mean Gregorian
    /// year, consistent with [`TimeSpan::from_years`]).
    #[must_use]
    pub fn from_kg_per_year(value: f64) -> Self {
        Self::new(value / crate::time::HOURS_PER_YEAR)
    }

    /// Returns the rate in kg CO₂e per year.
    #[must_use]
    pub fn kg_per_year(self) -> f64 {
        self.kg_per_hour() * crate::time::HOURS_PER_YEAR
    }
}

impl core::ops::Mul<TimeSpan> for Co2Rate {
    type Output = Co2Mass;
    fn mul(self, rhs: TimeSpan) -> Co2Mass {
        Co2Mass::from_kg(self.kg_per_hour() * rhs.hours())
    }
}

impl core::ops::Mul<Co2Rate> for TimeSpan {
    type Output = Co2Mass;
    fn mul(self, rhs: Co2Rate) -> Co2Mass {
        rhs * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn mass_conversions() {
        assert!((Co2Mass::from_g(2_500.0).kg() - 2.5).abs() < EPS);
        assert!((Co2Mass::from_tonnes(0.5).kg() - 500.0).abs() < EPS);
        assert!((Co2Mass::from_kg(1.5).g() - 1_500.0).abs() < EPS);
        assert!((Co2Mass::from_kg(2_000.0).tonnes() - 2.0).abs() < EPS);
    }

    #[test]
    fn intensity_times_energy_is_mass() {
        let ci = CarbonIntensity::from_g_per_kwh(475.0);
        let c = ci * Energy::from_kwh(2.0);
        assert!((c.kg() - 0.95).abs() < EPS);
        let c2 = Energy::from_kwh(2.0) * ci;
        assert!((c2.kg() - c.kg()).abs() < EPS);
        assert!((ci.g_per_kwh() - 475.0).abs() < EPS);
    }

    #[test]
    fn eq6_electricity_term_shape() {
        // (CI_emb · EPA + GPA + MPA) · A_wafer, all types enforced.
        let ci = CarbonIntensity::from_g_per_kwh(509.0);
        let epa = EnergyPerArea::from_kwh_per_cm2(0.8);
        let gpa = CarbonPerArea::from_kg_per_cm2(0.15);
        let mpa = CarbonPerArea::from_kg_per_cm2(0.25);
        let per_area = ci * epa + gpa + mpa;
        assert!((per_area.kg_per_cm2() - (0.509 * 0.8 + 0.4)).abs() < EPS);
        let wafer = Area::from_cm2(706.8583);
        let c = per_area * wafer;
        assert!((c.kg() - per_area.kg_per_cm2() * 706.8583).abs() < 1e-9);
    }

    #[test]
    fn eq2_denominator_and_ratio_types() {
        // T = ΔC_emb / (CI_use · ΔP): must come out as a TimeSpan.
        let ci = CarbonIntensity::from_g_per_kwh(475.0);
        let delta_p = Power::from_watts(20.0);
        let rate = ci * delta_p;
        assert!((rate.kg_per_hour() - 0.475 * 0.02).abs() < EPS);
        let delta_c = Co2Mass::from_kg(83.22);
        let t = delta_c / rate;
        assert!((t.years() - 83.22 / (0.475 * 0.02) / 8_766.0).abs() < 1e-9);
    }

    #[test]
    fn rate_times_time_round_trips() {
        let rate = Co2Rate::from_kg_per_year(12.0);
        assert!((rate.kg_per_year() - 12.0).abs() < 1e-9);
        let mass = rate * TimeSpan::from_years(2.0);
        assert!((mass.kg() - 24.0).abs() < 1e-9);
        let mass2 = TimeSpan::from_years(2.0) * rate;
        assert!((mass2.kg() - mass.kg()).abs() < EPS);
    }

    #[test]
    fn carbon_per_area_gram_constructor() {
        let cpa = CarbonPerArea::from_g_per_cm2(150.0);
        assert!((cpa.kg_per_cm2() - 0.15).abs() < EPS);
    }

    #[test]
    fn intensity_times_power_commutes() {
        let ci = CarbonIntensity::from_g_per_kwh(100.0);
        let p = Power::from_watts(50.0);
        assert!(((ci * p).kg_per_hour() - (p * ci).kg_per_hour()).abs() < EPS);
    }
}
