//! Property-based tests for the quantity system.

use proptest::prelude::*;
use tdc_units::{
    Area, Bandwidth, CarbonIntensity, Co2Mass, Energy, EnergyPerArea, Length, Power, Ratio,
    Throughput, TimeSpan,
};

fn finite() -> impl Strategy<Value = f64> {
    -1.0e9..1.0e9f64
}

fn positive() -> impl Strategy<Value = f64> {
    1.0e-6..1.0e9f64
}

proptest! {
    #[test]
    fn addition_commutes(a in finite(), b in finite()) {
        let x = Co2Mass::from_kg(a) + Co2Mass::from_kg(b);
        let y = Co2Mass::from_kg(b) + Co2Mass::from_kg(a);
        prop_assert_eq!(x, y);
    }

    #[test]
    fn addition_associates_within_tolerance(a in finite(), b in finite(), c in finite()) {
        let x = (Co2Mass::from_kg(a) + Co2Mass::from_kg(b)) + Co2Mass::from_kg(c);
        let y = Co2Mass::from_kg(a) + (Co2Mass::from_kg(b) + Co2Mass::from_kg(c));
        prop_assert!((x.kg() - y.kg()).abs() <= 1e-6 * (1.0 + x.kg().abs()));
    }

    #[test]
    fn unit_conversions_round_trip(v in positive()) {
        prop_assert!((Length::from_um(v).um() - v).abs() / v < 1e-12);
        prop_assert!((Area::from_cm2(v).cm2() - v).abs() / v < 1e-12);
        prop_assert!((Energy::from_joules(v).joules() - v).abs() / v < 1e-9);
        prop_assert!((TimeSpan::from_years(v).years() - v).abs() / v < 1e-12);
        prop_assert!((Bandwidth::from_tbps(v).tbps() - v).abs() / v < 1e-12);
        prop_assert!((Co2Mass::from_g(v).g() - v).abs() / v < 1e-12);
    }

    #[test]
    fn power_time_energy_triangle(p in positive(), t in 1.0e-3..1.0e6f64) {
        let power = Power::from_watts(p);
        let span = TimeSpan::from_hours(t);
        let energy = power * span;
        let back = energy / span;
        prop_assert!((back.watts() - p).abs() / p < 1e-12);
    }

    #[test]
    fn carbon_scales_linearly_with_intensity(
        e in positive(),
        ci in 1.0..1_000.0f64,
        k in 1.0e-3..1.0e3f64,
    ) {
        let energy = Energy::from_kwh(e);
        let base = CarbonIntensity::from_g_per_kwh(ci) * energy;
        let scaled = CarbonIntensity::from_g_per_kwh(ci * k) * energy;
        prop_assert!((scaled.kg() - base.kg() * k).abs() / scaled.kg().max(1e-12) < 1e-9);
    }

    #[test]
    fn eq6_integrand_is_monotone_in_every_term(
        ci in 1.0..1_000.0f64,
        epa in 0.01..5.0f64,
        bump in 0.01..5.0f64,
        area in 1.0..1_000.0f64,
    ) {
        let a = Area::from_cm2(area);
        let low = CarbonIntensity::from_g_per_kwh(ci) * EnergyPerArea::from_kwh_per_cm2(epa) * a;
        let high = CarbonIntensity::from_g_per_kwh(ci)
            * EnergyPerArea::from_kwh_per_cm2(epa + bump)
            * a;
        prop_assert!(high > low);
    }

    #[test]
    fn throughput_efficiency_power_identity(th in positive(), eff in 0.01..100.0f64) {
        let t = Throughput::from_tops(th);
        let e = tdc_units::Efficiency::from_tops_per_watt(eff);
        let p = t / e;
        let back = e * p;
        prop_assert!((back.tops() - th).abs() / th < 1e-12);
    }

    #[test]
    fn saving_and_complement_identities(base in positive(), new in positive()) {
        let s = Ratio::saving(base, new).unwrap();
        // saving(base, new) + new/base == 1
        prop_assert!((s.fraction() + new / base - 1.0).abs() < 1e-9);
        let r = Ratio::from_fraction(s.fraction());
        prop_assert!((r.complement().complement().fraction() - r.fraction()).abs() < 1e-12);
    }

    #[test]
    fn ordering_is_consistent_with_values(a in finite(), b in finite()) {
        let x = Power::from_watts(a);
        let y = Power::from_watts(b);
        prop_assert_eq!(x < y, a < b);
        prop_assert_eq!(x.max(y).watts(), a.max(b));
        prop_assert_eq!(x.min(y).watts(), a.min(b));
    }

    #[test]
    fn sum_equals_fold(values in proptest::collection::vec(finite(), 0..20)) {
        let total: Co2Mass = values.iter().map(|v| Co2Mass::from_kg(*v)).sum();
        let folded = values.iter().fold(0.0, |acc, v| acc + v);
        prop_assert!((total.kg() - folded).abs() <= 1e-6 * (1.0 + folded.abs()));
    }
}
