//! IC yield models for 2D, 3D, and 2.5D integration.
//!
//! Three layers of machinery, mirroring §3.2.5 of the paper:
//!
//! 1. **Die yield** ([`DieYieldModel`]) — the probability that a die of
//!    a given area survives fabrication. The paper uses the
//!    negative-binomial distribution of Eq. 15,
//!    `y = (1 + A·D0/α)^(−α)`; Poisson and Murphy variants are included
//!    for ablation.
//! 2. **Stacking yield composition** ([`three_d_stack_yields`],
//!    [`assembly_2_5d_yields`]) — Table 3 of the paper: how individual
//!    die, bond, and substrate yields combine into the *composite*
//!    divisors of Eqs. 4 and 11 for die-to-wafer (D2W), wafer-to-wafer
//!    (W2W), chip-first, and chip-last flows.
//! 3. **Monte-Carlo cross-check** ([`monte_carlo`]) — a seeded
//!    defect-draw simulation that verifies the closed forms.
//!
//! ```
//! use tdc_units::Area;
//! use tdc_yield::DieYieldModel;
//!
//! // EPYC-class 7 nm chiplet: 74 mm², D0 = 0.13 /cm², α = 2.5.
//! let y = DieYieldModel::NegativeBinomial { alpha: 2.5 }
//!     .die_yield(Area::from_mm2(74.0), 0.13)
//!     .unwrap();
//! assert!((0.89..0.93).contains(&y));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod die;
pub mod monte_carlo;
mod stacking;

pub use die::{DieYieldModel, YieldError};
pub use stacking::{
    assembly_2_5d_yields, three_d_stack_yields, Assembly25dYields, AssemblyFlow,
    CompositeYieldProfile, StackingFlow, ThreeDStackYields,
};
