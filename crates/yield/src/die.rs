//! Single-die yield models ([`DieYieldModel`]).

use serde::{Deserialize, Serialize};
use tdc_units::Area;

/// Error produced by yield evaluation on invalid inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum YieldError {
    /// Die area was non-finite or negative.
    InvalidArea(f64),
    /// Defect density was non-finite or negative.
    InvalidDefectDensity(f64),
    /// Clustering parameter α was non-finite or non-positive.
    InvalidAlpha(f64),
    /// A component yield handed to a composition routine was outside
    /// `(0, 1]`.
    InvalidComponentYield(f64),
}

impl core::fmt::Display for YieldError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            YieldError::InvalidArea(a) => {
                write!(f, "die area must be finite and non-negative, got {a} mm²")
            }
            YieldError::InvalidDefectDensity(d) => {
                write!(
                    f,
                    "defect density must be finite and non-negative, got {d} /cm²"
                )
            }
            YieldError::InvalidAlpha(a) => {
                write!(f, "clustering alpha must be finite and positive, got {a}")
            }
            YieldError::InvalidComponentYield(y) => {
                write!(f, "component yield must be in (0, 1], got {y}")
            }
        }
    }
}

impl std::error::Error for YieldError {}

/// A model mapping die area and defect density to fabrication yield.
///
/// All variants agree in the small-defect limit (`y → 1 − A·D0`) and
/// order as `Poisson ≤ Murphy ≤ NegativeBinomial` for the same inputs —
/// clustering makes defects land together, sparing more dies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DieYieldModel {
    /// Negative-binomial yield — the paper's Eq. 15:
    /// `y = (1 + A·D0/α)^(−α)` with clustering parameter `α`.
    NegativeBinomial {
        /// Clustering parameter α (smaller = more clustered defects =
        /// higher yield at equal density). Typically 1.5–3.
        alpha: f64,
    },
    /// Poisson yield `y = e^(−A·D0)` — the no-clustering limit
    /// (α → ∞).
    Poisson,
    /// Murphy's yield `y = ((1 − e^(−A·D0)) / (A·D0))²` — the classic
    /// compromise model.
    Murphy,
}

impl Default for DieYieldModel {
    fn default() -> Self {
        DieYieldModel::NegativeBinomial { alpha: 3.0 }
    }
}

impl DieYieldModel {
    /// Evaluates the yield of a die of `area` under defect density
    /// `d0_per_cm2` (defects per cm²).
    ///
    /// # Errors
    ///
    /// Returns [`YieldError`] when the area or defect density is
    /// negative/non-finite, or the clustering α is non-positive.
    pub fn die_yield(self, area: Area, d0_per_cm2: f64) -> Result<f64, YieldError> {
        let a_cm2 = area.cm2();
        if !a_cm2.is_finite() || a_cm2 < 0.0 {
            return Err(YieldError::InvalidArea(area.mm2()));
        }
        if !d0_per_cm2.is_finite() || d0_per_cm2 < 0.0 {
            return Err(YieldError::InvalidDefectDensity(d0_per_cm2));
        }
        let defects = a_cm2 * d0_per_cm2; // expected defects per die
        let y = match self {
            DieYieldModel::NegativeBinomial { alpha } => {
                if !alpha.is_finite() || alpha <= 0.0 {
                    return Err(YieldError::InvalidAlpha(alpha));
                }
                (1.0 + defects / alpha).powf(-alpha)
            }
            DieYieldModel::Poisson => (-defects).exp(),
            DieYieldModel::Murphy => {
                if defects == 0.0 {
                    1.0
                } else {
                    let t = (1.0 - (-defects).exp()) / defects;
                    t * t
                }
            }
        };
        Ok(y.clamp(0.0, 1.0))
    }

    /// Short, stable name for reports and benches.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DieYieldModel::NegativeBinomial { .. } => "negative-binomial",
            DieYieldModel::Poisson => "poisson",
            DieYieldModel::Murphy => "murphy",
        }
    }
}

/// Validates that a component yield (bond, substrate, …) lies in
/// `(0, 1]`.
///
/// # Errors
///
/// Returns [`YieldError::InvalidComponentYield`] otherwise.
pub(crate) fn validate_component_yield(y: f64) -> Result<(), YieldError> {
    if y.is_finite() && y > 0.0 && y <= 1.0 {
        Ok(())
    } else {
        Err(YieldError::InvalidComponentYield(y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq15_known_value() {
        // (1 + 0.74·0.13/2.5)^(−2.5) ≈ 0.9098
        let y = DieYieldModel::NegativeBinomial { alpha: 2.5 }
            .die_yield(Area::from_mm2(74.0), 0.13)
            .unwrap();
        assert!((y - 0.9098).abs() < 5e-4, "got {y}");
    }

    #[test]
    fn zero_defects_or_zero_area_is_perfect_yield() {
        for model in [
            DieYieldModel::default(),
            DieYieldModel::Poisson,
            DieYieldModel::Murphy,
        ] {
            assert_eq!(model.die_yield(Area::from_mm2(100.0), 0.0).unwrap(), 1.0);
            assert_eq!(model.die_yield(Area::ZERO, 0.5).unwrap(), 1.0);
        }
    }

    #[test]
    fn yield_decreases_with_area_and_density() {
        let model = DieYieldModel::default();
        let mut prev = 1.1;
        for mm2 in [10.0, 50.0, 100.0, 400.0, 800.0] {
            let y = model.die_yield(Area::from_mm2(mm2), 0.1).unwrap();
            assert!(y < prev);
            prev = y;
        }
        let lo = model.die_yield(Area::from_mm2(100.0), 0.05).unwrap();
        let hi = model.die_yield(Area::from_mm2(100.0), 0.25).unwrap();
        assert!(hi < lo);
    }

    #[test]
    fn model_ordering_poisson_murphy_negbin() {
        let area = Area::from_mm2(400.0);
        let d0 = 0.15;
        let poisson = DieYieldModel::Poisson.die_yield(area, d0).unwrap();
        let murphy = DieYieldModel::Murphy.die_yield(area, d0).unwrap();
        let negbin = DieYieldModel::NegativeBinomial { alpha: 2.0 }
            .die_yield(area, d0)
            .unwrap();
        assert!(poisson < murphy, "{poisson} !< {murphy}");
        assert!(murphy < negbin, "{murphy} !< {negbin}");
    }

    #[test]
    fn negbin_approaches_poisson_for_large_alpha() {
        let area = Area::from_mm2(200.0);
        let d0 = 0.1;
        let poisson = DieYieldModel::Poisson.die_yield(area, d0).unwrap();
        let negbin = DieYieldModel::NegativeBinomial { alpha: 1.0e6 }
            .die_yield(area, d0)
            .unwrap();
        assert!((poisson - negbin).abs() < 1e-6);
    }

    #[test]
    fn small_defect_limit_is_linear() {
        let area = Area::from_mm2(1.0);
        let d0 = 0.001; // A·D0 = 1e-5
        for model in [
            DieYieldModel::default(),
            DieYieldModel::Poisson,
            DieYieldModel::Murphy,
        ] {
            let y = model.die_yield(area, d0).unwrap();
            assert!((y - (1.0 - 1.0e-5)).abs() < 1e-9, "{}: {y}", model.name());
        }
    }

    #[test]
    fn invalid_inputs_error() {
        let m = DieYieldModel::default();
        assert!(matches!(
            m.die_yield(Area::from_mm2(-1.0), 0.1),
            Err(YieldError::InvalidArea(_))
        ));
        assert!(matches!(
            m.die_yield(Area::from_mm2(10.0), f64::NAN),
            Err(YieldError::InvalidDefectDensity(_))
        ));
        assert!(matches!(
            DieYieldModel::NegativeBinomial { alpha: 0.0 }.die_yield(Area::from_mm2(10.0), 0.1),
            Err(YieldError::InvalidAlpha(_))
        ));
        // Error messages are meaningful (C-GOOD-ERR).
        let err = m.die_yield(Area::from_mm2(-1.0), 0.1).unwrap_err();
        assert!(err.to_string().contains("die area"));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(DieYieldModel::default().name(), "negative-binomial");
        assert_eq!(DieYieldModel::Poisson.name(), "poisson");
        assert_eq!(DieYieldModel::Murphy.name(), "murphy");
    }
}
