//! Seeded Monte-Carlo verification of the closed-form yield models.
//!
//! The negative-binomial yield of Eq. 15 is exactly the zero-defect
//! probability of a gamma-mixed Poisson process: each die draws a local
//! defect rate `Λ ~ Gamma(α, A·D0/α)` (clustering) and then a defect
//! count `K ~ Poisson(Λ)`; the die is good iff `K = 0`, and
//! `P(K = 0) = (1 + A·D0/α)^(−α)`.
//!
//! This module simulates that process with a small, self-contained
//! sampler stack (Marsaglia–Tsang gamma, Knuth poisson, Box–Muller
//! normal) so the analytical formulas can be validated end-to-end
//! without extra dependencies.
//!
//! ```
//! use rand::SeedableRng;
//! use tdc_units::Area;
//! use tdc_yield::monte_carlo::simulate_die_yield;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let sim = simulate_die_yield(Area::from_mm2(100.0), 0.2, 2.5, 20_000, &mut rng);
//! let analytical = (1.0 + 1.0 * 0.2 / 2.5f64).powf(-2.5);
//! assert!((sim - analytical).abs() < 0.02);
//! ```

use rand::Rng;
use tdc_units::Area;

/// Draws one standard normal via Box–Muller.
fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random::<f64>();
        let u2: f64 = rng.random::<f64>();
        if u1 > f64::MIN_POSITIVE {
            let r = (-2.0 * u1.ln()).sqrt();
            return r * (2.0 * core::f64::consts::PI * u2).cos();
        }
    }
}

/// Draws `Gamma(shape, scale)` via Marsaglia–Tsang (with the standard
/// shape-boost for `shape < 1`).
///
/// # Panics
///
/// Panics if `shape` or `scale` is not finite and positive.
pub fn sample_gamma<R: Rng + ?Sized>(shape: f64, scale: f64, rng: &mut R) -> f64 {
    assert!(
        shape.is_finite() && shape > 0.0,
        "gamma shape must be positive"
    );
    assert!(
        scale.is_finite() && scale > 0.0,
        "gamma scale must be positive"
    );
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) · U^(1/a).
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        return sample_gamma(shape + 1.0, scale, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v * scale;
        }
    }
}

/// Draws `Poisson(lambda)` via Knuth's product method (adequate for the
/// per-die defect rates of this model, which are ≪ 100).
///
/// # Panics
///
/// Panics if `lambda` is negative or not finite.
pub fn sample_poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> u64 {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "poisson rate must be non-negative"
    );
    if lambda == 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        // Defensive cap: lambda is small in this model; a runaway loop
        // indicates an upstream bug, not a legitimate sample.
        if k > 10_000 {
            return k;
        }
    }
}

/// Sample mean and *unbiased* sample variance (the `n − 1` Bessel
/// denominator) of `samples` — the estimator the sampler-validation
/// tests compare against analytical moments. The biased `n`
/// denominator would systematically understate the variance.
///
/// # Panics
///
/// Panics if `samples` has fewer than two elements.
#[must_use]
pub fn sample_mean_variance(samples: &[f64]) -> (f64, f64) {
    assert!(samples.len() >= 2, "variance needs at least two samples");
    #[allow(clippy::cast_precision_loss)]
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    (mean, var)
}

/// Simulates the fabrication of `trials` dies of `area` under defect
/// density `d0_per_cm2` and clustering `alpha`, returning the fraction
/// that came out defect-free.
///
/// This is the empirical counterpart of
/// [`DieYieldModel::NegativeBinomial`](crate::DieYieldModel); agreement
/// within Monte-Carlo error is asserted by this crate's tests.
///
/// # Panics
///
/// Panics if `trials` is zero or the physical parameters are
/// non-positive (see [`sample_gamma`]).
pub fn simulate_die_yield<R: Rng + ?Sized>(
    area: Area,
    d0_per_cm2: f64,
    alpha: f64,
    trials: u32,
    rng: &mut R,
) -> f64 {
    assert!(trials > 0, "need at least one trial");
    let mean_defects = area.cm2() * d0_per_cm2;
    if mean_defects == 0.0 {
        return 1.0;
    }
    let scale = mean_defects / alpha;
    let mut good = 0u32;
    for _ in 0..trials {
        let lambda = sample_gamma(alpha, scale, rng);
        if sample_poisson(lambda, rng) == 0 {
            good += 1;
        }
    }
    f64::from(good) / f64::from(trials)
}

/// Simulates `trials` assemblies of an `N`-die D2W stack with
/// per-die yields `die_yields` and per-step bond yield `bond_yield`,
/// returning the observed fraction of working stacks. Cross-checks
/// [`three_d_stack_yields`](crate::three_d_stack_yields)'s `overall`.
///
/// # Panics
///
/// Panics if `trials` is zero.
pub fn simulate_stack_survival<R: Rng + ?Sized>(
    die_yields: &[f64],
    bond_yield: f64,
    trials: u32,
    rng: &mut R,
) -> f64 {
    assert!(trials > 0, "need at least one trial");
    let steps = die_yields.len().saturating_sub(1);
    let mut good = 0u32;
    for _ in 0..trials {
        let dies_ok = die_yields.iter().all(|&y| rng.random::<f64>() < y);
        let bonds_ok = (0..steps).all(|_| rng.random::<f64>() < bond_yield);
        if dies_ok && bonds_ok {
            good += 1;
        }
    }
    f64::from(good) / f64::from(trials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{three_d_stack_yields, DieYieldModel, StackingFlow};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const PIN_GAMMA: f64 = 0.143_587_973_066_538_06;
    const PIN_POISSON: u64 = 3;
    const PIN_DIE: f64 = 0.891;
    const PIN_STACK: f64 = 0.7844;

    #[test]
    fn gamma_sampler_matches_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(42);
        let (shape, scale) = (2.5, 0.08);
        let n = 50_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| sample_gamma(shape, scale, &mut rng))
            .collect();
        let (mean, var) = sample_mean_variance(&samples);
        assert!((mean - shape * scale).abs() < 0.01, "mean {mean}");
        assert!((var - shape * scale * scale).abs() < 0.01, "var {var}");
    }

    #[test]
    fn unbiased_variance_uses_the_bessel_denominator() {
        // Hand-checked: mean 2, squared deviations 1+0+1 = 2, so the
        // unbiased estimate is 2/(n−1) = 1 — not the biased 2/3.
        let (mean, var) = sample_mean_variance(&[1.0, 2.0, 3.0]);
        assert_eq!(mean, 2.0);
        assert_eq!(var, 1.0);
    }

    #[test]
    fn seeded_outputs_are_pinned() {
        // Regression pins for the workspace's deterministic StdRng
        // (xoshiro256++ seeded via SplitMix64): if any of these exact
        // values drifts, every seeded simulation in the repo has, and
        // recorded validation numbers silently stop meaning anything.
        let mut rng = StdRng::seed_from_u64(42);
        let gamma = sample_gamma(2.5, 0.08, &mut rng);
        let poisson = sample_poisson(3.0, &mut rng);
        let die = simulate_die_yield(Area::from_mm2(120.0), 0.1, 2.0, 5_000, &mut rng);
        let stack = simulate_stack_survival(&[0.92, 0.88], 0.96, 5_000, &mut rng);
        assert_eq!(gamma.to_bits(), PIN_GAMMA.to_bits(), "gamma {gamma:?}");
        assert_eq!(poisson, PIN_POISSON, "poisson {poisson}");
        assert_eq!(die.to_bits(), PIN_DIE.to_bits(), "die yield {die:?}");
        assert_eq!(stack.to_bits(), PIN_STACK.to_bits(), "stack {stack:?}");
    }

    #[test]
    fn gamma_sampler_small_shape_branch() {
        let mut rng = StdRng::seed_from_u64(43);
        let (shape, scale) = (0.5, 1.0);
        let n = 50_000;
        #[allow(clippy::cast_precision_loss)]
        let mean = (0..n)
            .map(|_| sample_gamma(shape, scale, &mut rng))
            .sum::<f64>()
            / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn poisson_sampler_matches_mean() {
        let mut rng = StdRng::seed_from_u64(44);
        let lambda = 3.0;
        let n = 50_000;
        #[allow(clippy::cast_precision_loss)]
        let mean = (0..n)
            .map(|_| sample_poisson(lambda, &mut rng) as f64)
            .sum::<f64>()
            / f64::from(n);
        assert!((mean - lambda).abs() < 0.05, "mean {mean}");
        assert_eq!(sample_poisson(0.0, &mut rng), 0);
    }

    #[test]
    fn monte_carlo_agrees_with_eq15() {
        let mut rng = StdRng::seed_from_u64(7);
        let area = Area::from_mm2(300.0);
        let d0 = 0.13;
        let alpha = 2.5;
        let analytical = DieYieldModel::NegativeBinomial { alpha }
            .die_yield(area, d0)
            .unwrap();
        let simulated = simulate_die_yield(area, d0, alpha, 60_000, &mut rng);
        assert!(
            (simulated - analytical).abs() < 0.01,
            "sim {simulated} vs analytical {analytical}"
        );
    }

    #[test]
    fn monte_carlo_agrees_with_stack_overall() {
        let mut rng = StdRng::seed_from_u64(11);
        let dies = [0.92, 0.88, 0.95];
        let bond = 0.96;
        let analytical = three_d_stack_yields(&dies, bond, StackingFlow::DieToWafer)
            .unwrap()
            .overall();
        let simulated = simulate_stack_survival(&dies, bond, 60_000, &mut rng);
        assert!(
            (simulated - analytical).abs() < 0.01,
            "sim {simulated} vs analytical {analytical}"
        );
    }

    #[test]
    fn zero_defect_density_simulates_perfect_yield() {
        let mut rng = StdRng::seed_from_u64(1);
        let y = simulate_die_yield(Area::from_mm2(100.0), 0.0, 2.0, 10, &mut rng);
        assert_eq!(y, 1.0);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let run = || {
            let mut rng = StdRng::seed_from_u64(99);
            simulate_die_yield(Area::from_mm2(120.0), 0.1, 2.0, 5_000, &mut rng)
        };
        assert_eq!(run(), run());
    }
}
