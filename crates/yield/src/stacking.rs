//! Stacking-yield composition — the paper's Table 3.
//!
//! Eq. 4 divides each die's manufacturing carbon by a *composite* yield
//! `Y_die_i`, and Eq. 11 divides each bonding step's carbon by a
//! composite `Y_bonding_i`. Table 3 defines those composites for the
//! four assembly flows. This module reproduces the table verbatim;
//! where the published formulas are asymmetric (the top die of a D2W
//! stack bears no bonding risk), we keep the published form and note it.

use crate::die::{validate_component_yield, YieldError};
use serde::{Deserialize, Serialize};

/// How 3D tiers are mated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StackingFlow {
    /// Die-to-wafer: dies are singulated and tested before stacking
    /// (known-good-die), so each die carries only its own fab yield plus
    /// the bonding steps that follow it.
    DieToWafer,
    /// Wafer-to-wafer: whole wafers are bonded blind; every die carries
    /// the *product* of all tier yields (an undetected bad die kills the
    /// whole stack position).
    WaferToWafer,
}

impl core::fmt::Display for StackingFlow {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StackingFlow::DieToWafer => write!(f, "D2W"),
            StackingFlow::WaferToWafer => write!(f, "W2W"),
        }
    }
}

/// How 2.5D dies meet their substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AssemblyFlow {
    /// Chip-first (e.g. InFO): dies are embedded before the RDL is
    /// built, so die carbon is additionally at the mercy of the
    /// substrate yield.
    ChipFirst,
    /// Chip-last (e.g. CoWoS): the substrate is finished first and dies
    /// are attached one by one; every attach step risks the work done
    /// so far.
    ChipLast,
}

impl core::fmt::Display for AssemblyFlow {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AssemblyFlow::ChipFirst => write!(f, "chip-first"),
            AssemblyFlow::ChipLast => write!(f, "chip-last"),
        }
    }
}

/// Composite yields of a 3D stack (Table 3, upper half).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreeDStackYields {
    flow: StackingFlow,
    die_composites: Vec<f64>,
    bonding_composites: Vec<f64>,
    overall: f64,
}

impl ThreeDStackYields {
    /// The flow these composites were computed for.
    #[must_use]
    pub fn flow(&self) -> StackingFlow {
        self.flow
    }

    /// Composite yield `Y_die_i` dividing die *i*'s carbon in Eq. 4
    /// (0-based; die 0 is the base of the stack).
    #[must_use]
    pub fn die_composite(&self, i: usize) -> Option<f64> {
        self.die_composites.get(i).copied()
    }

    /// All per-die composites, base die first.
    #[must_use]
    pub fn die_composites(&self) -> &[f64] {
        &self.die_composites
    }

    /// Composite yield `Y_bonding_i` dividing bonding step *i*'s carbon
    /// in Eq. 11 (0-based; step 0 attaches die 1 onto die 0; there are
    /// `N − 1` steps).
    #[must_use]
    pub fn bonding_composite(&self, i: usize) -> Option<f64> {
        self.bonding_composites.get(i).copied()
    }

    /// All per-step bonding composites.
    #[must_use]
    pub fn bonding_composites(&self) -> &[f64] {
        &self.bonding_composites
    }

    /// Probability that one assembled stack is fully functional:
    /// `Π y_die · y_bond^(N−1)` (flow-independent — the flows differ in
    /// *whose carbon* is wasted, not in final stack survival).
    #[must_use]
    pub fn overall(&self) -> f64 {
        self.overall
    }

    fn new(
        flow: StackingFlow,
        die_composites: Vec<f64>,
        bonding_composites: Vec<f64>,
        overall: f64,
    ) -> Self {
        Self {
            flow,
            die_composites,
            bonding_composites,
            overall,
        }
    }
}

/// Computes Table 3's composite yields for an `N`-die 3D stack.
///
/// * `die_yields` — fab yield `y_die_j` of each die, base first
///   (`N ≥ 1`; a single "die" degenerates to no bonding).
/// * `bond_yield` — per-step bonding yield `y_D2W` or `y_W2W`.
///
/// Published formulas (1-based `i`, `N` dies):
///
/// | flow | `Y_die_i` | `Y_bonding_i` |
/// |------|-----------|----------------|
/// | D2W | `y_die_i · y_b^(N−i)` | `y_b^(N−i)` |
/// | W2W | `Π_j y_die_j · y_b^(N−1)` | `Π_j y_die_j · y_b^(N−1)` |
///
/// # Errors
///
/// Returns [`YieldError::InvalidComponentYield`] if any input yield is
/// outside `(0, 1]`.
pub fn three_d_stack_yields(
    die_yields: &[f64],
    bond_yield: f64,
    flow: StackingFlow,
) -> Result<ThreeDStackYields, YieldError> {
    for &y in die_yields {
        validate_component_yield(y)?;
    }
    validate_component_yield(bond_yield)?;
    let n = die_yields.len();
    let steps = n.saturating_sub(1);
    let product: f64 = die_yields.iter().product();
    #[allow(clippy::cast_possible_truncation, clippy::cast_precision_loss)]
    let overall = product * bond_yield.powi(steps as i32);
    let (die_composites, bonding_composites) = match flow {
        StackingFlow::DieToWafer => {
            let die = die_yields
                .iter()
                .enumerate()
                .map(|(idx, &y)| {
                    // 1-based i = idx + 1; exponent N − i = n − idx − 1.
                    #[allow(clippy::cast_possible_truncation)]
                    let exp = (n - idx - 1) as i32;
                    y * bond_yield.powi(exp)
                })
                .collect();
            let bonds = (0..steps)
                .map(|step| {
                    // 1-based step i = step + 1; exponent N − i.
                    #[allow(clippy::cast_possible_truncation)]
                    let exp = (n - step - 1) as i32;
                    bond_yield.powi(exp)
                })
                .collect();
            (die, bonds)
        }
        StackingFlow::WaferToWafer => {
            let composite = overall;
            (vec![composite; n], vec![composite; steps])
        }
    };
    Ok(ThreeDStackYields::new(
        flow,
        die_composites,
        bonding_composites,
        overall,
    ))
}

/// Composite yields of a 2.5D assembly (Table 3, lower half).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assembly25dYields {
    flow: AssemblyFlow,
    die_composites: Vec<f64>,
    substrate_composite: f64,
    bonding_composites: Vec<f64>,
    overall: f64,
}

impl Assembly25dYields {
    /// The assembly flow.
    #[must_use]
    pub fn flow(&self) -> AssemblyFlow {
        self.flow
    }

    /// Composite `Y_die_i` for die *i* (0-based).
    #[must_use]
    pub fn die_composite(&self, i: usize) -> Option<f64> {
        self.die_composites.get(i).copied()
    }

    /// All per-die composites.
    #[must_use]
    pub fn die_composites(&self) -> &[f64] {
        &self.die_composites
    }

    /// Composite `Y_substrate` dividing the interposer/RDL carbon.
    #[must_use]
    pub fn substrate_composite(&self) -> f64 {
        self.substrate_composite
    }

    /// Composite `Y_bonding_i` for attach step *i* (0-based).
    #[must_use]
    pub fn bonding_composite(&self, i: usize) -> Option<f64> {
        self.bonding_composites.get(i).copied()
    }

    /// All per-step bonding composites.
    #[must_use]
    pub fn bonding_composites(&self) -> &[f64] {
        &self.bonding_composites
    }

    /// Probability the finished assembly works.
    #[must_use]
    pub fn overall(&self) -> f64 {
        self.overall
    }
}

/// Computes Table 3's composite yields for a 2.5D assembly of `N` dies
/// on one substrate.
///
/// * `die_yields` — fab yield of each die.
/// * `substrate_yield` — fab yield of the interposer / RDL / bridge.
/// * `bond_yields` — per-die attach yield `y_bonding_j` (chip-last;
///   must have the same length as `die_yields`). Chip-first flows fold
///   attach risk into the substrate build and take `bond_yields` as the
///   *embedding* yields whose product multiplies nothing per Table 3
///   (the table pins `Y_bonding_i = 1`).
///
/// Published formulas (1-based, `N` dies):
///
/// | flow | `Y_die_i` | `Y_substrate` | `Y_bonding_i` |
/// |------|-----------|---------------|----------------|
/// | chip-first | `y_die_i · y_sub` | `y_sub` | `1` |
/// | chip-last | `y_die_i · Π_j y_b_j` | `y_sub · Π_j y_b_j` | `Π_j y_b_j` |
///
/// # Errors
///
/// Returns [`YieldError::InvalidComponentYield`] on any yield outside
/// `(0, 1]`, and treats a `bond_yields`/`die_yields` length mismatch in
/// chip-last flows as an invalid component (reported with value −1).
pub fn assembly_2_5d_yields(
    die_yields: &[f64],
    substrate_yield: f64,
    bond_yields: &[f64],
    flow: AssemblyFlow,
) -> Result<Assembly25dYields, YieldError> {
    for &y in die_yields {
        validate_component_yield(y)?;
    }
    validate_component_yield(substrate_yield)?;
    for &y in bond_yields {
        validate_component_yield(y)?;
    }
    let n = die_yields.len();
    match flow {
        AssemblyFlow::ChipFirst => {
            let die = die_yields
                .iter()
                .map(|&y| y * substrate_yield)
                .collect::<Vec<_>>();
            let die_product: f64 = die_yields.iter().product();
            let overall = die_product * substrate_yield;
            Ok(Assembly25dYields {
                flow,
                die_composites: die,
                substrate_composite: substrate_yield,
                bonding_composites: vec![1.0; n],
                overall,
            })
        }
        AssemblyFlow::ChipLast => {
            if bond_yields.len() != n {
                return Err(YieldError::InvalidComponentYield(-1.0));
            }
            let bond_product: f64 = bond_yields.iter().product();
            let die = die_yields
                .iter()
                .map(|&y| y * bond_product)
                .collect::<Vec<_>>();
            let die_product: f64 = die_yields.iter().product();
            let overall = die_product * substrate_yield * bond_product;
            Ok(Assembly25dYields {
                flow,
                die_composites: die,
                substrate_composite: substrate_yield * bond_product,
                bonding_composites: vec![bond_product; n],
                overall,
            })
        }
    }
}

/// Flow-agnostic view of a design's composite-yield divisors — the
/// Table 3 outputs in exactly the shape Eqs. 4 and 11 consume them.
///
/// [`ThreeDStackYields`] and [`Assembly25dYields`] keep the
/// flow-specific bookkeeping; this profile flattens either (or a bare
/// unstacked die list) into the three divisor sets a carbon model
/// iterates over, so a staged evaluator can cache "the yield outcome
/// of a design" as one artifact without remembering which Table 3 row
/// produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompositeYieldProfile {
    per_die: Vec<f64>,
    per_bond_step: Vec<f64>,
    substrate: Option<f64>,
}

impl CompositeYieldProfile {
    /// Profile of unstacked dies (a monolithic 2D design): each die's
    /// composite is its own fab yield, and there are no bonding steps.
    #[must_use]
    pub fn bare_dies(fab_yields: &[f64]) -> Self {
        Self {
            per_die: fab_yields.to_vec(),
            per_bond_step: Vec::new(),
            substrate: None,
        }
    }

    /// Composite divisors `Y_die_i` (Eq. 4), base die first.
    #[must_use]
    pub fn per_die(&self) -> &[f64] {
        &self.per_die
    }

    /// Composite divisors `Y_bonding_i` (Eq. 11), one per bond/attach
    /// step.
    #[must_use]
    pub fn per_bond_step(&self) -> &[f64] {
        &self.per_bond_step
    }

    /// Composite divisor `Y_substrate` (2.5D assemblies only).
    #[must_use]
    pub fn substrate(&self) -> Option<f64> {
        self.substrate
    }
}

impl From<&ThreeDStackYields> for CompositeYieldProfile {
    fn from(y: &ThreeDStackYields) -> Self {
        Self {
            per_die: y.die_composites().to_vec(),
            per_bond_step: y.bonding_composites().to_vec(),
            substrate: None,
        }
    }
}

impl From<&Assembly25dYields> for CompositeYieldProfile {
    fn from(y: &Assembly25dYields) -> Self {
        Self {
            per_die: y.die_composites().to_vec(),
            per_bond_step: y.bonding_composites().to_vec(),
            substrate: Some(y.substrate_composite()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn composite_profile_flattens_all_sources() {
        let bare = CompositeYieldProfile::bare_dies(&[0.9]);
        assert_eq!(bare.per_die(), &[0.9]);
        assert!(bare.per_bond_step().is_empty());
        assert_eq!(bare.substrate(), None);

        let stack = three_d_stack_yields(&[0.92, 0.90], 0.95, StackingFlow::DieToWafer).unwrap();
        let p = CompositeYieldProfile::from(&stack);
        assert_eq!(p.per_die(), stack.die_composites());
        assert_eq!(p.per_bond_step(), stack.bonding_composites());
        assert_eq!(p.substrate(), None);

        let asm =
            assembly_2_5d_yields(&[0.9, 0.9], 0.8, &[0.99, 0.99], AssemblyFlow::ChipLast).unwrap();
        let p = CompositeYieldProfile::from(&asm);
        assert_eq!(p.per_die(), asm.die_composites());
        assert_eq!(p.substrate(), Some(asm.substrate_composite()));
    }

    #[test]
    fn d2w_two_die_stack_matches_table3() {
        // Lakefield-style: base (memory) die y=0.92, top (logic) y=0.90,
        // bond 0.95.
        let y = three_d_stack_yields(&[0.92, 0.90], 0.95, StackingFlow::DieToWafer).unwrap();
        // Base die (i=1): y · b^(2−1) = 0.92·0.95
        assert!((y.die_composite(0).unwrap() - 0.92 * 0.95).abs() < EPS);
        // Top die (i=2): y · b^0 = 0.90
        assert!((y.die_composite(1).unwrap() - 0.90).abs() < EPS);
        // One bonding step (i=1): b^(2−1)
        assert!((y.bonding_composite(0).unwrap() - 0.95).abs() < EPS);
        assert!((y.overall() - 0.92 * 0.90 * 0.95).abs() < EPS);
    }

    #[test]
    fn w2w_everyone_bears_everything() {
        let y = three_d_stack_yields(&[0.92, 0.90], 0.95, StackingFlow::WaferToWafer).unwrap();
        let composite = 0.92 * 0.90 * 0.95;
        for i in 0..2 {
            assert!((y.die_composite(i).unwrap() - composite).abs() < EPS);
        }
        assert!((y.bonding_composite(0).unwrap() - composite).abs() < EPS);
        assert!((y.overall() - composite).abs() < EPS);
    }

    #[test]
    fn d2w_composites_dominate_w2w() {
        // Known-good-die testing must never make a die's composite yield
        // *worse* than blind wafer bonding.
        let dies = [0.9, 0.85, 0.95, 0.8];
        let d2w = three_d_stack_yields(&dies, 0.97, StackingFlow::DieToWafer).unwrap();
        let w2w = three_d_stack_yields(&dies, 0.97, StackingFlow::WaferToWafer).unwrap();
        for i in 0..dies.len() {
            assert!(d2w.die_composite(i).unwrap() >= w2w.die_composite(i).unwrap());
        }
    }

    #[test]
    fn four_die_d2w_exponents() {
        let y = three_d_stack_yields(&[0.9; 4], 0.9, StackingFlow::DieToWafer).unwrap();
        // die i (1-based) bears b^(4−i)
        for (idx, expect_exp) in [(0usize, 3), (1, 2), (2, 1), (3, 0)] {
            let expect = 0.9 * 0.9_f64.powi(expect_exp);
            assert!((y.die_composite(idx).unwrap() - expect).abs() < EPS);
        }
        // bonding step i bears b^(4−i)
        for (idx, expect_exp) in [(0usize, 3), (1, 2), (2, 1)] {
            let expect = 0.9_f64.powi(expect_exp);
            assert!((y.bonding_composite(idx).unwrap() - expect).abs() < EPS);
        }
        assert_eq!(y.bonding_composites().len(), 3);
        assert_eq!(y.die_composites().len(), 4);
        assert_eq!(y.flow(), StackingFlow::DieToWafer);
    }

    #[test]
    fn single_die_stack_degenerates() {
        for flow in [StackingFlow::DieToWafer, StackingFlow::WaferToWafer] {
            let y = three_d_stack_yields(&[0.88], 0.95, flow).unwrap();
            // No bonding steps; W2W composite = product of dies × b^0.
            assert_eq!(y.bonding_composites().len(), 0);
            assert!((y.die_composite(0).unwrap() - 0.88).abs() < EPS);
            assert!((y.overall() - 0.88).abs() < EPS);
        }
    }

    #[test]
    fn chip_first_matches_table3() {
        let y = assembly_2_5d_yields(&[0.9, 0.8], 0.95, &[0.99, 0.99], AssemblyFlow::ChipFirst)
            .unwrap();
        assert!((y.die_composite(0).unwrap() - 0.9 * 0.95).abs() < EPS);
        assert!((y.die_composite(1).unwrap() - 0.8 * 0.95).abs() < EPS);
        assert!((y.substrate_composite() - 0.95).abs() < EPS);
        assert!((y.bonding_composite(0).unwrap() - 1.0).abs() < EPS);
        assert!((y.overall() - 0.9 * 0.8 * 0.95).abs() < EPS);
        assert_eq!(y.flow(), AssemblyFlow::ChipFirst);
    }

    #[test]
    fn chip_last_matches_table3() {
        let dies = [0.9, 0.8];
        let bonds = [0.98, 0.97];
        let bond_product = 0.98 * 0.97;
        let y = assembly_2_5d_yields(&dies, 0.95, &bonds, AssemblyFlow::ChipLast).unwrap();
        assert!((y.die_composite(0).unwrap() - 0.9 * bond_product).abs() < EPS);
        assert!((y.die_composite(1).unwrap() - 0.8 * bond_product).abs() < EPS);
        assert!((y.substrate_composite() - 0.95 * bond_product).abs() < EPS);
        for i in 0..2 {
            assert!((y.bonding_composite(i).unwrap() - bond_product).abs() < EPS);
        }
        assert!((y.overall() - 0.9 * 0.8 * 0.95 * bond_product).abs() < EPS);
    }

    #[test]
    fn invalid_yields_are_rejected() {
        assert!(three_d_stack_yields(&[1.2], 0.9, StackingFlow::DieToWafer).is_err());
        assert!(three_d_stack_yields(&[0.9], 0.0, StackingFlow::DieToWafer).is_err());
        assert!(assembly_2_5d_yields(&[0.9], -0.1, &[0.9], AssemblyFlow::ChipFirst).is_err());
        assert!(assembly_2_5d_yields(&[0.9], 0.9, &[f64::NAN], AssemblyFlow::ChipLast).is_err());
        // Length mismatch in chip-last.
        assert!(assembly_2_5d_yields(&[0.9, 0.9], 0.9, &[0.9], AssemblyFlow::ChipLast).is_err());
    }

    #[test]
    fn out_of_range_index_returns_none() {
        let y = three_d_stack_yields(&[0.9, 0.9], 0.9, StackingFlow::DieToWafer).unwrap();
        assert!(y.die_composite(2).is_none());
        assert!(y.bonding_composite(1).is_none());
    }

    #[test]
    fn display_names() {
        assert_eq!(StackingFlow::DieToWafer.to_string(), "D2W");
        assert_eq!(StackingFlow::WaferToWafer.to_string(), "W2W");
        assert_eq!(AssemblyFlow::ChipFirst.to_string(), "chip-first");
        assert_eq!(AssemblyFlow::ChipLast.to_string(), "chip-last");
    }
}
