//! Property-based tests for the yield models.

use proptest::prelude::*;
use tdc_units::Area;
use tdc_yield::{
    assembly_2_5d_yields, three_d_stack_yields, AssemblyFlow, DieYieldModel, StackingFlow,
};

fn yield_value() -> impl Strategy<Value = f64> {
    0.01..=1.0f64
}

proptest! {
    #[test]
    fn die_yield_is_a_probability(
        area in 0.0..5_000.0f64,
        d0 in 0.0..2.0f64,
        alpha in 0.1..50.0f64,
    ) {
        for model in [
            DieYieldModel::NegativeBinomial { alpha },
            DieYieldModel::Poisson,
            DieYieldModel::Murphy,
        ] {
            let y = model.die_yield(Area::from_mm2(area), d0).unwrap();
            prop_assert!((0.0..=1.0).contains(&y), "{}: {y}", model.name());
        }
    }

    #[test]
    fn die_yield_monotone_in_area(
        a1 in 1.0..2_000.0f64,
        extra in 1.0..2_000.0f64,
        d0 in 0.001..1.0f64,
        alpha in 0.5..10.0f64,
    ) {
        let model = DieYieldModel::NegativeBinomial { alpha };
        let small = model.die_yield(Area::from_mm2(a1), d0).unwrap();
        let large = model.die_yield(Area::from_mm2(a1 + extra), d0).unwrap();
        prop_assert!(large <= small);
    }

    #[test]
    fn die_yield_monotone_in_defect_density(
        area in 1.0..2_000.0f64,
        d0 in 0.001..1.0f64,
        extra in 0.001..1.0f64,
    ) {
        for model in [
            DieYieldModel::NegativeBinomial { alpha: 2.5 },
            DieYieldModel::Poisson,
            DieYieldModel::Murphy,
        ] {
            let lo = model.die_yield(Area::from_mm2(area), d0).unwrap();
            let hi = model.die_yield(Area::from_mm2(area), d0 + extra).unwrap();
            prop_assert!(hi <= lo, "{}", model.name());
        }
    }

    #[test]
    fn clustering_always_helps(
        area in 1.0..2_000.0f64,
        d0 in 0.001..1.0f64,
        alpha in 0.5..20.0f64,
    ) {
        // Negative binomial ≥ Poisson for any finite clustering.
        let nb = DieYieldModel::NegativeBinomial { alpha }
            .die_yield(Area::from_mm2(area), d0)
            .unwrap();
        let poisson = DieYieldModel::Poisson
            .die_yield(Area::from_mm2(area), d0)
            .unwrap();
        prop_assert!(nb >= poisson - 1e-12);
    }

    #[test]
    fn stack_composites_are_probabilities_and_d2w_dominates(
        dies in proptest::collection::vec(yield_value(), 1..6),
        bond in yield_value(),
    ) {
        let d2w = three_d_stack_yields(&dies, bond, StackingFlow::DieToWafer).unwrap();
        let w2w = three_d_stack_yields(&dies, bond, StackingFlow::WaferToWafer).unwrap();
        for i in 0..dies.len() {
            let yd = d2w.die_composite(i).unwrap();
            let yw = w2w.die_composite(i).unwrap();
            prop_assert!((0.0..=1.0).contains(&yd));
            prop_assert!((0.0..=1.0).contains(&yw));
            // Known-good-die can never be worse than blind bonding.
            prop_assert!(yd >= yw - 1e-12);
        }
        prop_assert!((d2w.overall() - w2w.overall()).abs() < 1e-12,
            "overall stack survival is flow-independent");
    }

    #[test]
    fn stack_overall_is_product_form(
        dies in proptest::collection::vec(yield_value(), 1..6),
        bond in yield_value(),
    ) {
        let stack = three_d_stack_yields(&dies, bond, StackingFlow::DieToWafer).unwrap();
        let product: f64 = dies.iter().product();
        #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
        let expect = product * bond.powi(dies.len() as i32 - 1);
        prop_assert!((stack.overall() - expect).abs() < 1e-12);
    }

    #[test]
    fn assembly_composites_are_probabilities(
        dies in proptest::collection::vec(yield_value(), 1..6),
        substrate in yield_value(),
        bond in yield_value(),
    ) {
        let bonds = vec![bond; dies.len()];
        for flow in [AssemblyFlow::ChipFirst, AssemblyFlow::ChipLast] {
            let y = assembly_2_5d_yields(&dies, substrate, &bonds, flow).unwrap();
            for i in 0..dies.len() {
                prop_assert!((0.0..=1.0).contains(&y.die_composite(i).unwrap()));
            }
            prop_assert!((0.0..=1.0).contains(&y.substrate_composite()));
            prop_assert!((0.0..=1.0).contains(&y.overall()));
        }
    }

    #[test]
    fn chip_first_spares_the_attach_risk(
        dies in proptest::collection::vec(yield_value(), 2..5),
        substrate in yield_value(),
        bond in 0.01..0.999f64,
    ) {
        let bonds = vec![bond; dies.len()];
        let first =
            assembly_2_5d_yields(&dies, substrate, &bonds, AssemblyFlow::ChipFirst).unwrap();
        // Chip-first bonding composites are pinned at 1 per Table 3.
        for i in 0..dies.len() {
            prop_assert_eq!(first.bonding_composite(i).unwrap(), 1.0);
        }
    }
}
