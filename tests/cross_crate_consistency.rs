//! Consistency checks across crates: the same physics computed through
//! different paths must agree.

use rand::rngs::StdRng;
use rand::SeedableRng;
use threed_carbon::baselines::{greenchip, ActModel};
use threed_carbon::prelude::*;
use threed_carbon::yields::{monte_carlo, DieYieldModel};

fn model() -> CarbonModel {
    CarbonModel::new(ModelContext::default())
}

/// Core's `DecisionMetrics` must agree with GreenChip's raw Eq. 2
/// formulas wherever the latter produce a positive, finite crossing.
#[test]
fn decision_metrics_match_greenchip_formulas() {
    let ci = CarbonIntensity::from_g_per_kwh(475.0);
    let cases = [
        (100.0, 150.0, 100.0, 80.0),
        (100.0, 70.0, 100.0, 105.0),
        (50.0, 60.0, 30.0, 25.0),
        (10.0, 9.0, 5.0, 4.0),
    ];
    for (emb_2d, emb_alt, p_2d, p_alt) in cases {
        let metrics = threed_carbon::DecisionMetrics::evaluate(
            Co2Mass::from_kg(emb_2d),
            Power::from_watts(p_2d),
            Co2Mass::from_kg(emb_alt),
            Power::from_watts(p_alt),
            ci,
        );
        let tc_raw = greenchip::indifference_point(
            Co2Mass::from_kg(emb_2d),
            Co2Mass::from_kg(emb_alt),
            Power::from_watts(p_2d),
            Power::from_watts(p_alt),
            ci,
        )
        .unwrap();
        let tr_raw = greenchip::breakeven_time(
            Co2Mass::from_kg(emb_alt),
            Power::from_watts(p_2d),
            Power::from_watts(p_alt),
            ci,
        );
        if tc_raw.hours().is_finite() && tc_raw.hours() > 0.0 {
            assert!(
                (metrics.tc.hours() - tc_raw.hours()).abs() < 1e-6,
                "tc mismatch for {emb_2d}/{emb_alt}/{p_2d}/{p_alt}"
            );
        }
        assert_eq!(metrics.tr.is_infinite(), tr_raw.is_infinite());
        if !tr_raw.is_infinite() {
            assert!((metrics.tr.hours() - tr_raw.hours()).abs() < 1e-6);
        }
    }
}

/// A 2D die run through 3D-Carbon with the BEOL adjustment disabled
/// differs from ACT only by the dies-per-wafer edge losses and the
/// area-based packaging — both strictly positive, bounded effects.
#[test]
fn act_and_core_agree_on_2d_dies_up_to_known_mechanisms() {
    let ctx = ModelContext::builder().beol_adjustment(false).build();
    let m = CarbonModel::new(ctx);
    let act = ActModel::default();
    for (node, mm2) in [
        (ProcessNode::N7, 74.0),
        (ProcessNode::N14, 416.0),
        (ProcessNode::N28, 100.0),
    ] {
        let design = ChipDesign::monolithic_2d(
            DieSpec::builder("die", node)
                .area(Area::from_mm2(mm2))
                .build()
                .unwrap(),
        );
        let core_die = m.embodied(&design).unwrap().die_carbon;
        let act_die = act.die_embodied(node, Area::from_mm2(mm2)).unwrap();
        // Same per-area data and yield model → core must sit above ACT
        // (edge losses waste wafer area) but within 25 %.
        let ratio = core_die.kg() / act_die.kg();
        assert!(
            (1.0..1.25).contains(&ratio),
            "{node} {mm2} mm²: core/ACT = {ratio}"
        );
    }
}

/// The negative-binomial closed form agrees with the seeded
/// Monte-Carlo defect simulation, through the public API.
#[test]
fn eq15_matches_monte_carlo() {
    let mut rng = StdRng::seed_from_u64(2024);
    for (mm2, d0, alpha) in [(74.0, 0.13, 2.5), (416.0, 0.09, 3.0), (455.0, 0.13, 2.5)] {
        let area = Area::from_mm2(mm2);
        let analytical = DieYieldModel::NegativeBinomial { alpha }
            .die_yield(area, d0)
            .unwrap();
        let simulated = monte_carlo::simulate_die_yield(area, d0, alpha, 40_000, &mut rng);
        assert!(
            (analytical - simulated).abs() < 0.015,
            "{mm2} mm²: analytical {analytical} vs simulated {simulated}"
        );
    }
}

/// A 3D stack with perfect bonding yield and free bonding energy
/// converges to the sum of its dies evaluated separately (the
/// degenerate-configuration identity).
#[test]
fn stack_degenerates_to_sum_of_dies() {
    use threed_carbon::integration::{BondingMethod, BondingProcess, IntegrationCatalog};
    use threed_carbon::units::EnergyPerArea;

    let mut catalog = IntegrationCatalog::default();
    catalog.set_bonding(
        IntegrationTechnology::HybridBonding3d,
        BondingProcess::new(
            BondingMethod::HybridBonding,
            EnergyPerArea::from_kwh_per_cm2(1.0e-9),
            EnergyPerArea::from_kwh_per_cm2(1.0e-9),
            1.0,
            1.0,
        )
        .unwrap(),
    );
    let ctx = ModelContext::builder().catalog(catalog).build();
    let m = CarbonModel::new(ctx);

    let die = |name: &str| {
        DieSpec::builder(name, ProcessNode::N7)
            .area(Area::from_mm2(100.0))
            .build()
            .unwrap()
    };
    let stack = ChipDesign::stack_3d(
        vec![die("a"), die("b")],
        IntegrationTechnology::HybridBonding3d,
        StackOrientation::FaceToFace,
        Some(StackingFlow::DieToWafer),
    )
    .unwrap();
    let single = ChipDesign::monolithic_2d(die("solo"));

    let stack_b = m.embodied(&stack).unwrap();
    let single_b = m.embodied(&single).unwrap();
    // With unit bonding yield and ~zero bonding energy, per-die carbon
    // in the stack equals the standalone die's.
    assert!(
        (stack_b.die_carbon.kg() - 2.0 * single_b.die_carbon.kg()).abs() / stack_b.die_carbon.kg()
            < 1e-9
    );
    assert!(stack_b.bonding_carbon.kg() < 1e-6);
}

/// The facade re-exports the same types as the member crates.
#[test]
fn facade_reexports_are_the_same_types() {
    let a: threed_carbon::ProcessNode = ProcessNode::N7;
    let b: threed_carbon::technode::ProcessNode = a;
    assert_eq!(b.nanometers(), 7);
    let w: threed_carbon::model::Workload =
        Workload::fixed("x", Throughput::from_tops(1.0), TimeSpan::from_hours(1.0));
    assert_eq!(w.phases().len(), 1);
}

/// Operational carbon through the core model equals Eq. 16 computed by
/// hand from the reported power and duration (2D case, no stretch).
#[test]
fn eq16_hand_check() {
    let m = model();
    let design = ChipDesign::monolithic_2d(
        DieSpec::builder("orin", ProcessNode::N7)
            .gate_count(17.0e9)
            .efficiency(Efficiency::from_tops_per_watt(2.74))
            .build()
            .unwrap(),
    );
    let w = Workload::fixed(
        "drive",
        Throughput::from_tops(254.0),
        TimeSpan::from_hours(1_000.0),
    );
    let report = m.operational(&design, &w).unwrap();
    let expect_kwh = (254.0 / 2.74) * 1_000.0 / 1_000.0; // W × h → kWh
    assert!((report.energy.kwh() - expect_kwh).abs() < 1e-9);
    let expect_carbon = 0.475 * expect_kwh;
    assert!((report.carbon.kg() - expect_carbon).abs() < 1e-6);
}
