//! End-to-end assertions of the paper's headline claims — the
//! qualitative *shape* of every table and figure, as reproduced by
//! this implementation. If any of these fail, the reproduction has
//! drifted.

use threed_carbon::baselines::{ActPlusModel, DieInput, LcaDatabase, PackageClass};
use threed_carbon::prelude::*;
use threed_carbon::workloads::{
    epyc_7452, epyc_7452_as_monolithic_2d, lakefield, EpycReference, LakefieldReference,
};

fn model() -> CarbonModel {
    CarbonModel::new(ModelContext::default())
}

/// Fig. 4(a): the LCA figure sits a few percent above the 2D-adjusted
/// model; the real 2.5D product comes out below both; packaging is
/// area-based (≫ ACT+'s constant).
#[test]
fn fig4a_epyc_relations() {
    let m = model();
    let mcm = m.embodied(&epyc_7452().unwrap()).unwrap();
    let as_2d = m.embodied(&epyc_7452_as_monolithic_2d().unwrap()).unwrap();
    let lca = LcaDatabase::default()
        .embodied(threed_carbon::baselines::EPYC_7452)
        .unwrap();

    // LCA above 2D-adjusted, within 10 % (paper: 4.4 %).
    let discrepancy = (lca.kg() - as_2d.total().kg()) / as_2d.total().kg();
    assert!(
        (0.0..0.10).contains(&discrepancy),
        "LCA vs 2D-adjusted: {discrepancy}"
    );
    // The chiplet product beats the monolithic view (yield!).
    assert!(mcm.total() < as_2d.total());
    // Packaging dwarfs ACT+'s fixed 0.15 kg.
    assert!(mcm.packaging_carbon.kg() > 10.0 * 0.15);
    // And is in the paper's reported ballpark (3.47 kg ± 30 %).
    assert!(
        (2.4..4.5).contains(&mcm.packaging_carbon.kg()),
        "packaging {}",
        mcm.packaging_carbon.kg()
    );
}

/// Fig. 4(b): D2W beats W2W on composite die yields (KGD testing), and
/// the magnitudes land near the paper's reported percentages.
#[test]
fn fig4b_lakefield_yields() {
    let m = CarbonModel::new(LakefieldReference::context());
    let d2w = m
        .embodied(&lakefield(StackingFlow::DieToWafer).unwrap())
        .unwrap();
    let w2w = m
        .embodied(&lakefield(StackingFlow::WaferToWafer).unwrap())
        .unwrap();

    // Paper: D2W logic 89.3 %, memory 88.4 %; W2W both 79.7 %.
    assert!((d2w.dies[1].composite_yield - 0.893).abs() < 0.05);
    assert!((d2w.dies[0].composite_yield - 0.884).abs() < 0.05);
    assert!((w2w.dies[0].composite_yield - 0.797).abs() < 0.05);
    assert!(
        (w2w.dies[0].composite_yield - w2w.dies[1].composite_yield).abs() < 1e-12,
        "W2W tiers share fate"
    );
    assert!(w2w.total() > d2w.total());
}

/// Fig. 4(b): ACT+ treats the 3D stack as two 2D dies — no bonding, a
/// fixed packaging constant — so it undershoots 3D-Carbon.
#[test]
fn fig4b_act_plus_underestimates() {
    let m = CarbonModel::new(LakefieldReference::context());
    let d2w = m
        .embodied(&lakefield(StackingFlow::DieToWafer).unwrap())
        .unwrap();
    let act = ActPlusModel::default()
        .embodied(
            &[
                DieInput {
                    node: ProcessNode::N14,
                    area: LakefieldReference::base_die_area(),
                },
                DieInput {
                    node: ProcessNode::N7,
                    area: LakefieldReference::logic_die_area(),
                },
            ],
            PackageClass::ThreeD,
        )
        .unwrap();
    assert!(act.total() < d2w.total());
    assert_eq!(act.assembly_uplift, Co2Mass::ZERO);
}

/// Table 5 orderings for Orin (homogeneous split): M3D saves the most
/// embodied carbon, then hybrid, then micro, then EMIB; the silicon
/// interposer *increases* embodied carbon.
#[test]
fn table5_embodied_save_ordering() {
    let m = model();
    let spec = DriveSeries::Orin.spec();
    let workload = av_workload(spec.required_throughput);
    let baseline = spec.as_2d_design();

    let mut saves = std::collections::HashMap::new();
    for (label, design) in candidate_designs(&spec, SplitStrategy::Homogeneous)
        .unwrap()
        .into_iter()
        .skip(1)
    {
        let cmp = m.compare(&baseline, &design, &workload).unwrap();
        saves.insert(label, cmp.embodied_save.percent());
    }
    assert!(saves["M3D"] > saves["Hybrid"], "{saves:?}");
    assert!(saves["Hybrid"] > saves["Micro"] - 2.0, "{saves:?}");
    assert!(saves["Micro"] > saves["EMIB"], "{saves:?}");
    assert!(saves["EMIB"] > 0.0, "{saves:?}");
    assert!(saves["Si_int"] < 0.0, "interposer must increase embodied");
    assert!(
        saves["InFO_1"] < 0.0,
        "chip-first InFO must increase embodied"
    );
}

/// Table 5 decision metrics: choosing EMIB or any 3D option pays at a
/// 10-year lifetime; replacing never does; Si_int is never better.
#[test]
fn table5_decisions() {
    let m = model();
    let spec = DriveSeries::Orin.spec();
    let workload = av_workload(spec.required_throughput);
    let baseline = spec.as_2d_design();
    let lifetime = TimeSpan::from_years(10.0);

    for (label, design) in candidate_designs(&spec, SplitStrategy::Homogeneous)
        .unwrap()
        .into_iter()
        .skip(1)
    {
        let cmp = m.compare(&baseline, &design, &workload).unwrap();
        let viable = cmp.alt.operational.is_viable();
        match label.as_str() {
            "EMIB" | "Micro" | "Hybrid" | "M3D" => {
                assert!(viable, "{label} must be bandwidth-viable for Orin");
                assert!(
                    cmp.metrics.recommend_choosing(lifetime),
                    "{label} should be chosen at 10 years"
                );
                assert!(
                    !cmp.metrics.recommend_replacing(lifetime),
                    "{label} must not justify replacement at 10 years"
                );
            }
            "Si_int" => {
                assert!(viable, "Si_int meets Orin bandwidth");
                assert_eq!(cmp.metrics.outcome, ChoiceOutcome::NeverBetter);
                assert!(cmp.metrics.tc.is_infinite());
                assert!(cmp.metrics.tr.is_infinite());
            }
            "MCM" | "InFO_1" | "InFO_2" => {
                assert!(!viable, "{label} must be bandwidth-starved for Orin");
            }
            other => panic!("unexpected candidate {other}"),
        }
    }
}

/// Fig. 5: for THOR, *none* of the four 2.5D technologies meets the
/// bandwidth requirement; every 3D option does.
#[test]
fn fig5_thor_25d_invalidity() {
    let m = model();
    let spec = DriveSeries::Thor.spec();
    let workload = av_workload(spec.required_throughput);
    for (label, design) in candidate_designs(&spec, SplitStrategy::Homogeneous)
        .unwrap()
        .into_iter()
        .skip(1)
    {
        let report = m.lifecycle(&design, &workload).unwrap();
        let is_25d = matches!(
            design.technology().map(IntegrationTechnology::family),
            Some(IntegrationFamily::TwoPointFiveD)
        );
        if is_25d {
            assert!(
                !report.operational.is_viable(),
                "{label} must fail THOR's bandwidth"
            );
            assert!(report.operational.runtime_stretch > 1.0);
        } else {
            assert!(report.operational.is_viable(), "{label} (3D) must pass");
        }
    }
}

/// Fig. 5(b): the heterogeneous division saves less embodied carbon
/// than the homogeneous one for the bonded-stack technologies (paper
/// §5.1 — "lesser saving due to smaller memory die areas and limited
/// benefits from the older technology"). M3D is excluded: with tiers
/// sharing a wafer footprint, the two divisions come out within a few
/// percent of each other (recorded in EXPERIMENTS.md).
#[test]
fn fig5b_heterogeneous_saves_less() {
    let m = model();
    let spec = DriveSeries::Orin.spec();
    let workload = av_workload(spec.required_throughput);
    let baseline = spec.as_2d_design();
    for tech_label in ["Hybrid", "Micro"] {
        let find = |strategy| {
            candidate_designs(&spec, strategy)
                .unwrap()
                .into_iter()
                .find(|(l, _)| l == tech_label)
                .unwrap()
                .1
        };
        let homo = m
            .compare(&baseline, &find(SplitStrategy::Homogeneous), &workload)
            .unwrap();
        let hetero = m
            .compare(
                &baseline,
                &find(SplitStrategy::paper_heterogeneous()),
                &workload,
            )
            .unwrap();
        assert!(
            homo.embodied_save.percent() > hetero.embodied_save.percent(),
            "{tech_label}: homogeneous {h} should beat heterogeneous {e}",
            h = homo.embodied_save.percent(),
            e = hetero.embodied_save.percent()
        );
    }
}

/// §5.1: invalid 2.5D designs pay for their starved interfaces with
/// *higher operational carbon* than the 2D baseline (runtime stretch).
#[test]
fn fig5_invalid_designs_burn_more_operational_carbon() {
    let m = model();
    let spec = DriveSeries::Orin.spec();
    let workload = av_workload(spec.required_throughput);
    let base = m
        .lifecycle(&spec.as_2d_design(), &workload)
        .unwrap()
        .operational
        .carbon;
    let mcm = candidate_designs(&spec, SplitStrategy::Homogeneous)
        .unwrap()
        .into_iter()
        .find(|(l, _)| l == "MCM")
        .unwrap()
        .1;
    let op = m.lifecycle(&mcm, &workload).unwrap().operational;
    assert!(!op.is_viable());
    assert!(op.carbon > base);
}

/// §4.1 sanity: EPYC's five dies beat one monolithic die *because of
/// yield*, with everything else held fixed.
#[test]
fn chiplet_yield_advantage_is_real() {
    let m = model();
    let mcm = m.embodied(&epyc_7452().unwrap()).unwrap();
    let mono = m.embodied(&epyc_7452_as_monolithic_2d().unwrap()).unwrap();
    let ccd_yield = mcm.dies[0].fab_yield;
    let mono_yield = mono.dies[0].fab_yield;
    assert!(ccd_yield > mono_yield + 0.2);
    assert_eq!(EpycReference::ccd_count(), 4);
}
