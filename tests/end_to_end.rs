//! End-to-end workflows a downstream user would actually run:
//! serialization of reports, deep stacks, wafer-size studies, the
//! sweep API, and the logistics extension.

use threed_carbon::model::sweep::DesignSweep;
use threed_carbon::model::ComparisonReport;
use threed_carbon::prelude::*;
use threed_carbon::workloads::hbm_stack;

fn model() -> CarbonModel {
    CarbonModel::new(ModelContext::default())
}

fn orin_workload() -> Workload {
    av_workload(Throughput::from_tops(254.0))
}

/// Reports are data structures (C-SERDE): the main report types
/// implement `Serialize`/`Deserialize`/`Clone`/`PartialEq`, so they
/// can leave the process (dashboards, caching, CI artifacts).
#[test]
fn reports_are_data_structures() {
    fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
    assert_serde::<LifecycleReport>();
    assert_serde::<EmbodiedBreakdown>();
    assert_serde::<OperationalReport>();
    assert_serde::<ComparisonReport>();
    assert_serde::<DecisionMetrics>();
    assert_serde::<ChipDesign>();
    assert_serde::<Workload>();

    let m = model();
    let design = DriveSeries::Orin.spec().as_2d_design();
    let report = m.lifecycle(&design, &orin_workload()).unwrap();
    let copy = report.clone();
    assert_eq!(copy, report);
}

/// Deep F2B stacks (the HBM path) behave monotonically in tier count
/// for both flows, end to end.
#[test]
fn hbm_depth_monotonicity() {
    let m = model();
    let mut prev_d2w = 0.0;
    let mut prev_w2w = 0.0;
    for tiers in [1, 2, 4, 8] {
        let d2w = m
            .embodied(&hbm_stack(tiers, StackingFlow::DieToWafer).unwrap())
            .unwrap()
            .total()
            .kg();
        let w2w = m
            .embodied(&hbm_stack(tiers, StackingFlow::WaferToWafer).unwrap())
            .unwrap()
            .total()
            .kg();
        assert!(d2w > prev_d2w);
        assert!(w2w > prev_w2w);
        assert!(
            w2w > d2w,
            "blind bonding always costs more at depth {tiers}"
        );
        prev_d2w = d2w;
        prev_w2w = w2w;
    }
}

/// Bigger wafers amortize edge losses: moving EPYC production from
/// 300 mm to 450 mm wafers cuts per-part die carbon; 200 mm raises it.
#[test]
fn wafer_size_study() {
    let design = threed_carbon::workloads::epyc_7452().unwrap();
    let per_wafer = |wafer| {
        CarbonModel::new(ModelContext::builder().wafer(wafer).build())
            .embodied(&design)
            .unwrap()
            .die_carbon
            .kg()
    };
    let w200 = per_wafer(Wafer::W200);
    let w300 = per_wafer(Wafer::W300);
    let w450 = per_wafer(Wafer::W450);
    assert!(w200 > w300, "{w200} !> {w300}");
    assert!(w300 > w450, "{w300} !> {w450}");
    // The effect is edge losses only — well under 2×.
    assert!(w200 / w450 < 2.0);
}

/// The sweep API reproduces the hand-rolled Fig. 5 comparison: its
/// best viable Orin point matches the best of the candidate list.
#[test]
fn sweep_agrees_with_candidate_enumeration() {
    let m = model();
    let workload = orin_workload();
    let spec = DriveSeries::Orin.spec();

    let sweep_best = DesignSweep::new(spec.gate_count)
        .nodes(vec![ProcessNode::N7])
        .efficiency(spec.efficiency)
        .best(&m, &workload)
        .unwrap()
        .expect("a viable point exists");

    let manual_best = candidate_designs(&spec, SplitStrategy::Homogeneous)
        .unwrap()
        .into_iter()
        .filter_map(|(label, design)| {
            let r = m.lifecycle(&design, &workload).ok()?;
            r.operational.is_viable().then(|| (label, r.total().kg()))
        })
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();

    assert_eq!(
        sweep_best.technology.map(|t| t.label().to_owned()),
        Some(manual_best.0.clone()),
        "sweep best {} vs manual best {}",
        sweep_best.label,
        manual_best.0
    );
    assert!((sweep_best.report.total().kg() - manual_best.1).abs() < 1e-9);
}

/// The logistics extension stays a small correction for leading-edge
/// parts and composes with the lifecycle report.
#[test]
fn logistics_extension_composes() {
    use threed_carbon::model::logistics::LogisticsProfile;
    let m = model();
    let report = m
        .lifecycle(&DriveSeries::Orin.spec().as_2d_design(), &orin_workload())
        .unwrap();
    let extras = LogisticsProfile::air_freight().extras(&report.embodied);
    let four_phase_total = report.total() + extras.total();
    assert!(four_phase_total > report.total());
    assert!(extras.total().kg() / four_phase_total.kg() < 0.03);
    // Sea freight strictly cleaner.
    let sea = LogisticsProfile::sea_freight().extras(&report.embodied);
    assert!(sea.total() < extras.total());
}

/// `compare` is antisymmetric-ish: swapping base and alt flips the
/// sign of the embodied delta and inverts the recommendation direction.
#[test]
fn comparison_symmetry() {
    let m = model();
    let workload = orin_workload();
    let spec = DriveSeries::Orin.spec();
    let base = spec.as_2d_design();
    let alt = candidate_designs(&spec, SplitStrategy::Homogeneous)
        .unwrap()
        .into_iter()
        .find(|(l, _)| l == "Hybrid")
        .unwrap()
        .1;
    let fwd: ComparisonReport = m.compare(&base, &alt, &workload).unwrap();
    let rev: ComparisonReport = m.compare(&alt, &base, &workload).unwrap();
    assert!((fwd.metrics.embodied_delta.kg() + rev.metrics.embodied_delta.kg()).abs() < 1e-9);
    assert!((fwd.metrics.power_saving.watts() + rev.metrics.power_saving.watts()).abs() < 1e-9);
    // Hybrid dominates 2D here, so the reverse comparison must say the
    // 2D design is never better.
    assert_eq!(fwd.metrics.outcome, ChoiceOutcome::AlwaysBetter);
    assert_eq!(rev.metrics.outcome, ChoiceOutcome::NeverBetter);
}

/// Everything composes: a custom context (clean fab, dirty use, small
/// wafer, Murphy yield) still satisfies Eq. 1/Eq. 3 additivity on a
/// 2.5D design.
#[test]
fn custom_context_full_stack() {
    let ctx = ModelContext::builder()
        .fab_region(GridRegion::France)
        .use_region(GridRegion::CoalHeavy)
        .wafer(Wafer::W200)
        .die_yield(DieYieldChoice::Murphy)
        .build();
    let m = CarbonModel::new(ctx);
    let design = ChipDesign::assembly_25d(
        vec![
            DieSpec::builder("l", ProcessNode::N7)
                .gate_count(4.0e9)
                .build()
                .unwrap(),
            DieSpec::builder("r", ProcessNode::N12)
                .gate_count(4.0e9)
                .build()
                .unwrap(),
        ],
        IntegrationTechnology::Emib,
    )
    .unwrap();
    let r = m.lifecycle(&design, &orin_workload()).unwrap();
    let b = &r.embodied;
    let parts = b.die_carbon
        + b.bonding_carbon
        + b.packaging_carbon
        + b.substrate
            .as_ref()
            .map(|s| s.carbon)
            .unwrap_or(Co2Mass::ZERO);
    assert!((b.total().kg() - parts.kg()).abs() < 1e-12);
    assert!((r.total().kg() - (b.total() + r.operational.carbon).kg()).abs() < 1e-12);
    // Mixed-node dies evaluated against their own node tables.
    assert_ne!(b.dies[0].wafer_carbon, b.dies[1].wafer_carbon);
}
