//! Property-based tests on the full 3D-Carbon model: invariants that
//! must hold for *any* physically sensible design, not just the paper's
//! case studies.

use proptest::prelude::*;
use threed_carbon::prelude::*;

fn model() -> CarbonModel {
    CarbonModel::new(ModelContext::default())
}

fn any_node() -> impl Strategy<Value = ProcessNode> {
    prop::sample::select(ProcessNode::ALL.to_vec())
}

fn any_3d_tech() -> impl Strategy<Value = IntegrationTechnology> {
    prop::sample::select(vec![
        IntegrationTechnology::MicroBump3d,
        IntegrationTechnology::HybridBonding3d,
    ])
}

fn any_25d_tech() -> impl Strategy<Value = IntegrationTechnology> {
    prop::sample::select(vec![
        IntegrationTechnology::Mcm,
        IntegrationTechnology::InfoChipFirst,
        IntegrationTechnology::InfoChipLast,
        IntegrationTechnology::Emib,
        IntegrationTechnology::SiliconInterposer,
    ])
}

fn die(name: &str, node: ProcessNode, gates: f64) -> DieSpec {
    DieSpec::builder(name, node)
        .gate_count(gates)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn embodied_carbon_is_positive_and_additive(
        node in any_node(),
        gates in 1.0e8..1.0e10f64,
    ) {
        let m = model();
        let b = m
            .embodied(&ChipDesign::monolithic_2d(die("d", node, gates)))
            .unwrap();
        prop_assert!(b.total().kg() > 0.0);
        let parts = b.die_carbon + b.bonding_carbon + b.packaging_carbon;
        prop_assert!((b.total().kg() - parts.kg()).abs() < 1e-12);
    }

    #[test]
    fn more_gates_cost_more_carbon(
        node in any_node(),
        gates in 1.0e8..1.0e10f64,
        factor in 1.2..2.0f64,
    ) {
        let m = model();
        let small = m
            .embodied(&ChipDesign::monolithic_2d(die("s", node, gates)))
            .unwrap()
            .total();
        let large = m
            .embodied(&ChipDesign::monolithic_2d(die("l", node, gates * factor)))
            .unwrap()
            .total();
        prop_assert!(large > small);
    }

    #[test]
    fn cleaner_fab_grid_never_hurts(
        node in any_node(),
        gates in 1.0e8..1.0e10f64,
    ) {
        let dirty = CarbonModel::new(
            ModelContext::builder().fab_region(GridRegion::CoalHeavy).build(),
        );
        let clean = CarbonModel::new(
            ModelContext::builder().fab_region(GridRegion::Renewable).build(),
        );
        let design = ChipDesign::monolithic_2d(die("d", node, gates));
        prop_assert!(
            clean.embodied(&design).unwrap().total()
                < dirty.embodied(&design).unwrap().total()
        );
    }

    #[test]
    fn stack_yield_composites_never_exceed_fab_yields(
        tech in any_3d_tech(),
        gates in 5.0e8..8.0e9f64,
        flow in prop::sample::select(vec![
            StackingFlow::DieToWafer,
            StackingFlow::WaferToWafer,
        ]),
    ) {
        let m = model();
        let design = ChipDesign::stack_3d(
            vec![die("t0", ProcessNode::N7, gates), die("t1", ProcessNode::N7, gates)],
            tech,
            StackOrientation::FaceToBack,
            Some(flow),
        )
        .unwrap();
        let b = m.embodied(&design).unwrap();
        for d in &b.dies {
            prop_assert!((0.0..=1.0).contains(&d.fab_yield));
            prop_assert!(d.composite_yield <= d.fab_yield + 1e-12);
            prop_assert!(d.composite_yield > 0.0);
        }
    }

    #[test]
    fn lifecycle_total_is_emb_plus_op(
        tech in any_25d_tech(),
        gates in 5.0e8..8.0e9f64,
        tops in 1.0..500.0f64,
    ) {
        let m = model();
        let design = ChipDesign::assembly_25d(
            vec![die("l", ProcessNode::N7, gates), die("r", ProcessNode::N7, gates)],
            tech,
        )
        .unwrap();
        let w = Workload::fixed(
            "app",
            Throughput::from_tops(tops),
            TimeSpan::from_hours(10_000.0),
        );
        let r = m.lifecycle(&design, &w).unwrap();
        prop_assert!(
            (r.total().kg() - (r.embodied.total() + r.operational.carbon).kg()).abs()
                < 1e-12
        );
        prop_assert!(r.operational.runtime_stretch >= 1.0);
        prop_assert!(r.operational.carbon.kg() >= 0.0);
    }

    #[test]
    fn longer_missions_emit_more(
        gates in 5.0e8..1.0e10f64,
        tops in 1.0..500.0f64,
        hours in 100.0..50_000.0f64,
        factor in 1.5..4.0f64,
    ) {
        let m = model();
        let design = ChipDesign::monolithic_2d(die("d", ProcessNode::N7, gates));
        let short = m
            .lifecycle(
                &design,
                &Workload::fixed("a", Throughput::from_tops(tops), TimeSpan::from_hours(hours)),
            )
            .unwrap();
        let long = m
            .lifecycle(
                &design,
                &Workload::fixed(
                    "a",
                    Throughput::from_tops(tops),
                    TimeSpan::from_hours(hours * factor),
                ),
            )
            .unwrap();
        prop_assert!(long.operational.carbon > short.operational.carbon);
        // Embodied carbon is workload-independent.
        prop_assert!(
            (long.embodied.total().kg() - short.embodied.total().kg()).abs() < 1e-12
        );
    }

    #[test]
    fn comparison_save_ratios_match_reports(
        gates in 5.0e8..8.0e9f64,
        tops in 10.0..300.0f64,
    ) {
        let m = model();
        let base = ChipDesign::monolithic_2d(die("base", ProcessNode::N7, 2.0 * gates));
        let alt = ChipDesign::stack_3d(
            vec![die("t0", ProcessNode::N7, gates), die("t1", ProcessNode::N7, gates)],
            IntegrationTechnology::HybridBonding3d,
            StackOrientation::FaceToFace,
            Some(StackingFlow::DieToWafer),
        )
        .unwrap();
        let w = Workload::fixed(
            "app",
            Throughput::from_tops(tops),
            TimeSpan::from_hours(5_000.0),
        );
        let cmp = m.compare(&base, &alt, &w).unwrap();
        let expect = (cmp.base.embodied.total().kg() - cmp.alt.embodied.total().kg())
            / cmp.base.embodied.total().kg();
        prop_assert!((cmp.embodied_save.fraction() - expect).abs() < 1e-12);
        // Decision self-consistency: AlwaysBetter implies choosing at
        // any lifetime.
        if cmp.metrics.outcome == ChoiceOutcome::AlwaysBetter {
            prop_assert!(cmp.metrics.recommend_choosing(TimeSpan::from_years(1.0)));
            prop_assert!(cmp.metrics.recommend_choosing(TimeSpan::from_years(100.0)));
        }
    }

    #[test]
    fn bandwidth_constraint_only_ever_adds_carbon(
        tech in any_25d_tech(),
        gates in 5.0e8..8.0e9f64,
        tops in 50.0..2_000.0f64,
    ) {
        let on = model();
        let off = CarbonModel::new(
            ModelContext::builder().bandwidth_constraint(false).build(),
        );
        let design = ChipDesign::assembly_25d(
            vec![die("l", ProcessNode::N7, gates), die("r", ProcessNode::N7, gates)],
            tech,
        )
        .unwrap();
        let w = Workload::fixed(
            "app",
            Throughput::from_tops(tops),
            TimeSpan::from_hours(10_000.0),
        );
        let with = on.lifecycle(&design, &w).unwrap();
        let without = off.lifecycle(&design, &w).unwrap();
        prop_assert!(with.operational.carbon.kg() >= without.operational.carbon.kg() - 1e-9);
        prop_assert!(
            (with.embodied.total().kg() - without.embodied.total().kg()).abs() < 1e-12
        );
    }
}
