//! Offline stand-in for the subset of `rand` 0.9 this workspace uses:
//! `rand::Rng::random::<f64>()`, `rand::SeedableRng::seed_from_u64`, and
//! `rand::rngs::StdRng`.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a
//! high-quality, deterministic generator that is more than adequate for
//! the seeded Monte-Carlo yield verification this workspace runs. It is
//! NOT the same stream as real rand's `StdRng` (ChaCha12), so tests must
//! assert statistics, not exact sample values — which they already do.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`RngCore`] (mirrors the
/// role of rand's `StandardUniform` distribution).
pub trait UniformSample {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        ((rng.next_u64() >> 11) as f64) * SCALE
    }
}

impl UniformSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl UniformSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing sampling interface (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the uniform distribution.
    fn random<T: UniformSample>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generator types (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for rand's
    /// `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn f64_samples_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        assert!((sum / f64::from(n) - 0.5).abs() < 0.01);
    }
}
