//! Offline mini benchmark harness.
//!
//! Stand-in for the subset of `criterion` this workspace's bench suites
//! use: [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Each benchmark is warmed up briefly, then timed over a batch
//! sized to run for roughly [`MEASURE_TARGET`], and the mean time per
//! iteration is printed. There is no statistical analysis, HTML report,
//! or baseline comparison — just honest wall-clock numbers, with no
//! crates.io dependency.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Warm-up budget per benchmark.
pub const WARMUP_TARGET: Duration = Duration::from_millis(150);
/// Measurement budget per benchmark.
pub const MEASURE_TARGET: Duration = Duration::from_millis(400);

/// Times one closure (mirrors `criterion::Bencher`).
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_ns: f64,
    iterations: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records its mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: also calibrates how many iterations fit the budget.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_TARGET {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let n = ((MEASURE_TARGET.as_secs_f64() / per_iter).ceil() as u64).max(1);

        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.mean_ns = elapsed.as_secs_f64() * 1.0e9 / n as f64;
        self.iterations = n;
    }
}

fn report(id: &str, bencher: &Bencher) {
    let ns = bencher.mean_ns;
    let (value, unit) = if ns < 1.0e3 {
        (ns, "ns")
    } else if ns < 1.0e6 {
        (ns / 1.0e3, "µs")
    } else if ns < 1.0e9 {
        (ns / 1.0e6, "ms")
    } else {
        (ns / 1.0e9, "s")
    };
    println!(
        "{id:<50} {value:>10.3} {unit}/iter ({} iters)",
        bencher.iterations
    );
}

/// Benchmark driver (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            mean_ns: 0.0,
            iterations: 0,
        };
        f(&mut bencher);
        report(&id.to_string(), &bencher);
        self
    }

    /// Opens a named group; benchmark ids are prefixed with the group
    /// name, `criterion`-style.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a named benchmark within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(full, f);
        self
    }

    /// Ends the group. (No-op here; kept for API compatibility.)
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one runner (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `fn main` running the given groups (mirrors
/// `criterion::criterion_main!`). Requires `harness = false` on the
/// bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags (e.g. `--bench`);
            // accept and ignore them.
            $($group();)+
        }
    };
}
