//! Offline mini property-testing harness.
//!
//! Stand-in for the subset of `proptest` this workspace uses, built so
//! the property suites compile and run without crates.io access:
//!
//! - [`proptest!`] wrapping `#[test] fn name(x in strategy, ...)` bodies,
//! - [`prop_assert!`] / [`prop_assert_eq!`] early-return assertions,
//! - [`Strategy`] implemented for `Range<f64>` / `RangeInclusive<f64>`,
//! - [`collection::vec`] for variable-length `Vec` strategies.
//!
//! Unlike real proptest there is no shrinking: each test runs a fixed
//! number of cases seeded deterministically from the test name, and a
//! failing case reports its inputs via the assertion message. That is a
//! deliberate trade for a zero-dependency build; the strategies used in
//! this workspace are simple enough that shrinking adds little.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Number of cases each `proptest!` test executes.
pub const CASES: u32 = 96;

/// A failed property-test case (mirrors `proptest::test_runner::TestCaseError`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result alias used by generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-block configuration accepted by
/// `#![proptest_config(...)]` inside [`proptest!`].
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run for each test in the block.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: CASES }
    }
}

/// Deterministic source of test inputs.
pub mod test_runner {
    /// SplitMix64 generator seeded from the test name, so every run of a
    /// given test sees the same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from `name` (typically the test function
        /// name) via FNV-1a.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
            ((self.next_u64() >> 11) as f64) * SCALE
        }

        /// Uniform `usize` in `[lo, hi)`.
        ///
        /// # Panics
        ///
        /// Panics if the range is empty.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty length range {lo}..{hi}");
            let span = (hi - lo) as u64;
            lo + (self.next_u64() % span) as usize
        }
    }
}

/// A recipe for generating test values (mirrors `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: fmt::Debug;

    /// Draws one value from `rng`.
    fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut test_runner::TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut test_runner::TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        // Scale by the next-up fraction so `hi` itself is reachable.
        let u = ((rng.next_u64() >> 11) as f64) / ((1u64 << 53) - 1) as f64;
        lo + (hi - lo) * u
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut test_runner::TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut test_runner::TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )+
    };
}

int_range_strategy!(usize, u64, u32, u16, u8);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{test_runner::TestRng, Strategy};
    use std::fmt;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `len` (half-open, like proptest's size
    /// ranges).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_in(self.len.start, self.len.end);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Value-set strategies (mirrors `proptest::sample`).
pub mod sample {
    use super::{test_runner::TestRng, Strategy};
    use std::fmt;

    /// Strategy choosing uniformly from a fixed set of values.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    /// Picks one of `items` uniformly at random.
    ///
    /// # Panics
    ///
    /// Panics at sample time if `items` is empty.
    pub fn select<T: Clone + fmt::Debug>(items: Vec<T>) -> Select<T> {
        Select { items }
    }

    impl<T: Clone + fmt::Debug> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(!self.items.is_empty(), "select over an empty set");
            self.items[rng.usize_in(0, self.items.len())].clone()
        }
    }
}

/// One-stop import mirroring `proptest::prelude`.
pub mod prelude {
    /// Alias of the crate root so `prop::sample::select(...)` etc. work,
    /// as with real proptest's prelude.
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs [`CASES`] sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases: u32 = ($config).cases;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..cases {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    // Render inputs before the body runs: the body may
                    // consume its arguments.
                    let case_inputs =
                        [$(format!("{} = {:?}", stringify!($arg), $arg)),+].join(", ");
                    let outcome: $crate::TestCaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!(
                            "property `{}` failed on case {}/{}: {}\n  inputs: {}",
                            stringify!($name),
                            case + 1,
                            cases,
                            err,
                            case_inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, returning a
/// [`TestCaseError`] (rather than panicking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a `proptest!` body, returning a
/// [`TestCaseError`] on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn unit() -> impl Strategy<Value = f64> {
        0.0..1.0f64
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in unit(), y in -5.0..=5.0f64) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((-5.0..=5.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(0.0..1.0f64, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert_eq!(v.iter().filter(|x| !(0.0..1.0).contains(*x)).count(), 0);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
