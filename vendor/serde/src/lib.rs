//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public types so
//! downstream users of the real serde ecosystem get serializable types,
//! but nothing in-tree serializes at runtime and the build environment
//! cannot reach crates.io. This crate provides just enough surface for
//! the source to compile unchanged: the two trait names and no-op derive
//! macros (from the sibling `serde_derive` stand-in) that accept
//! `#[serde(...)]` helper attributes.
//!
//! Swapping in real serde is a one-line change in the workspace manifest;
//! no source edits are required.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
///
/// Blanket-implemented for every type: the no-op derive cannot emit
/// real impls, and downstream code only uses these traits in
/// compile-time `T: Serialize` assertions, which should keep passing
/// exactly as they would with real serde (where the derives provide
/// the impls).
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize`. Blanket-implemented;
/// see [`Serialize`].
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Mirrors `serde::de` for the `DeserializeOwned` bound.
pub mod de {
    /// Marker trait mirroring `serde::de::DeserializeOwned`.
    /// Blanket-implemented; see [`crate::Serialize`].
    pub trait DeserializeOwned {}

    impl<T> DeserializeOwned for T {}
}
