//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, and nothing in this
//! workspace actually serializes at runtime (the derives only keep the
//! public API source-compatible with real serde). These derive macros
//! therefore accept the full `#[derive(Serialize, Deserialize)]` +
//! `#[serde(...)]` surface and expand to nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (with any `#[serde(...)]` helper
/// attributes) and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (with any `#[serde(...)]` helper
/// attributes) and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
