//! Parallel design-space exploration: shard the full (node ×
//! technology × tier) space across worker threads, memoize repeated
//! points, and get a ranking that is byte-identical to the serial
//! path.
//!
//! ```text
//! cargo run --example parallel_sweep
//! ```

use threed_carbon::prelude::*;

fn main() -> Result<(), ModelError> {
    let model = CarbonModel::new(ModelContext::default());
    let workload = Workload::fixed(
        "inference",
        Throughput::from_tops(254.0),
        TimeSpan::from_years(10.0) * (1.3 / 24.0),
    )
    .with_average_utilization(0.15);

    // 17 G gates (Orin-class) across every node, every technology, and
    // three tier counts.
    let sweep = DesignSweep::new(17.0e9)
        .efficiency(Efficiency::from_tops_per_watt(2.74))
        .tier_counts(vec![2, 3, 4]);
    let plan = sweep.plan()?;
    println!("plan: {} points", plan.len());

    let executor = SweepExecutor::new(0); // one worker per core
    let result = executor.execute(&model, &plan, &workload)?;
    let stats = result.stats();
    println!(
        "evaluated {} ({} dropped as unbuildable) on {} workers\n",
        stats.evaluated, stats.dropped, stats.workers
    );

    println!("top 10 by life-cycle carbon:");
    for (rank, entry) in result.entries().iter().take(10).enumerate() {
        println!(
            "  {:>2}. {:<16} {:>8.2} kg  ({})",
            rank + 1,
            entry.label,
            entry.report.total().kg(),
            if entry.is_viable() {
                "viable"
            } else {
                "bandwidth-limited"
            },
        );
    }

    // Re-executing the same plan is answered entirely from the cache.
    let again = executor.execute(&model, &plan, &workload)?;
    println!(
        "\nre-execution: {}/{} cache hits, identical ranking: {}",
        again.stats().cache_hits,
        plan.len(),
        again.entries() == result.entries(),
    );

    // And the serial path produces the same entries, bit for bit.
    let serial = sweep.run(&model, &workload)?;
    assert_eq!(serial.as_slice(), result.entries());
    println!("serial path matches: {}", !serial.is_empty());
    Ok(())
}
