//! The embodied carbon of high-bandwidth memory: how stack depth and
//! bonding flow change an HBM cube's footprint — Table 1's
//! "micro-bumping, F2B, ≥2 dies" row explored as an application.
//!
//! ```text
//! cargo run --example hbm_cube
//! ```

use threed_carbon::prelude::*;
use threed_carbon::workloads::hbm_stack;

fn main() -> Result<(), ModelError> {
    let model = CarbonModel::new(ModelContext::default());

    println!("HBM cube embodied carbon vs stack depth (1 base + N DRAM tiers):\n");
    println!(
        "{:>7} {:>12} {:>12} {:>14} {:>16}",
        "tiers", "D2W (kg)", "W2W (kg)", "W2W premium", "D2W stack yield"
    );
    for tiers in [1u32, 2, 4, 8, 12] {
        let d2w = model.embodied(&hbm_stack(tiers, StackingFlow::DieToWafer)?)?;
        let w2w = model.embodied(&hbm_stack(tiers, StackingFlow::WaferToWafer)?)?;
        let premium = (w2w.total().kg() / d2w.total().kg() - 1.0) * 100.0;
        // Overall survival = composite of the last W2W die (they all
        // share the full-stack product).
        let survival = w2w.dies[0].composite_yield * 100.0;
        println!(
            "{tiers:>7} {:>12.3} {:>12.3} {premium:>13.1}% {survival:>15.1}%",
            d2w.total().kg(),
            w2w.total().kg(),
        );
    }

    println!(
        "\nKnown-good-die testing (D2W) is what makes tall memory stacks \
         economically — and environmentally — buildable: blind wafer-on-wafer \
         bonding compounds every tier's yield loss into every die's carbon."
    );

    let cube = model.embodied(&hbm_stack(8, StackingFlow::DieToWafer)?)?;
    println!("\nFull breakdown of an 8-high D2W cube:\n{cube}");
    Ok(())
}
