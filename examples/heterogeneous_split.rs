//! Heterogeneous die division: isolate a SoC's memory and I/O into a
//! cheap 28 nm die and keep only the logic on the leading-edge node —
//! the paper's §5 "heterogeneous approach".
//!
//! Sweeps the memory/IO fraction to show when the strategy pays and
//! when it stops helping (the paper finds it saves *less* than the
//! homogeneous split because the second die is small and the old node
//! only helps the area it carries).
//!
//! ```text
//! cargo run --example heterogeneous_split
//! ```

use threed_carbon::prelude::*;
use threed_carbon::workloads::heterogeneous_split;

fn main() -> Result<(), ModelError> {
    let model = CarbonModel::new(ModelContext::default());
    let spec = DriveSeries::Orin.spec();
    let workload = AvMissionProfile::default().workload(spec.required_throughput);
    let baseline = spec.as_2d_design();
    let base_report = model.lifecycle(&baseline, &workload)?;

    println!(
        "ORIN 2D baseline: {:.2} kg embodied, {:.2} kg lifecycle\n",
        base_report.embodied.total().kg(),
        base_report.total().kg()
    );

    println!("Paper's configuration (20 % of gates to a 28 nm mem/IO die):\n");
    for tech in [
        IntegrationTechnology::HybridBonding3d,
        IntegrationTechnology::Monolithic3d,
        IntegrationTechnology::Emib,
    ] {
        let design = heterogeneous_split(&spec, tech)?;
        let report = model.lifecycle(&design, &workload)?;
        let emb_save = Ratio::saving(
            base_report.embodied.total().kg(),
            report.embodied.total().kg(),
        )
        .unwrap_or(Ratio::ZERO);
        println!(
            "  {:<8} embodied {:>6.2} kg (saves {:>6.2} %), lifecycle {:>6.2} kg, {}",
            format!("{}:", tech.label()),
            report.embodied.total().kg(),
            emb_save.percent(),
            report.total().kg(),
            if report.operational.is_viable() {
                "viable"
            } else {
                "bandwidth-invalid"
            }
        );
    }

    println!("\nSweep of the memory/IO fraction (hybrid bonding):\n");
    println!("  fraction   embodied kg   vs 2D");
    for percent in [10u32, 20, 30, 40, 50] {
        let fraction = f64::from(percent) / 100.0;
        let dies = {
            use threed_carbon::workloads::SplitStrategy;
            let strategy = SplitStrategy::Heterogeneous {
                memio_fraction: fraction,
                memio_node: ProcessNode::N28,
            };
            candidate_designs(&spec, strategy)?
                .into_iter()
                .find(|(label, _)| label == "Hybrid")
                .expect("hybrid candidate exists")
                .1
        };
        let report = model.embodied(&dies)?;
        let save = Ratio::saving(base_report.embodied.total().kg(), report.total().kg())
            .unwrap_or(Ratio::ZERO);
        println!(
            "  {:>7} %   {:>9.2}   {:>+6.2} %",
            percent,
            report.total().kg(),
            -save.percent()
        );
    }

    println!(
        "\nCompare with the homogeneous split of the same chip, which saves more \
         (run `cargo run -p tdc-bench --bin table5_decision`)."
    );
    Ok(())
}
