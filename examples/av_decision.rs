//! Sustainable decision-making for an autonomous-vehicle platform —
//! the paper's §5.2 scenario as an application.
//!
//! Should a fleet operator *choose* a 3D/2.5D redesign for new
//! vehicles, and should they *replace* the computers in vehicles
//! already on the road? The answer depends on the embodied/operational
//! trade and the vehicle's remaining lifetime.
//!
//! ```text
//! cargo run --example av_decision
//! ```

use threed_carbon::prelude::*;

fn main() -> Result<(), ModelError> {
    let model = CarbonModel::new(ModelContext::default());
    let profile = AvMissionProfile::default();

    let spec = DriveSeries::Orin.spec();
    let workload = profile.workload(spec.required_throughput);
    let baseline = spec.as_2d_design();

    println!(
        "Fleet decision for {} ({} driving h/day, {:.0}-year life):\n",
        spec.name, profile.driving_hours_per_day, profile.lifetime_years
    );

    for (label, design) in candidate_designs(&spec, SplitStrategy::Homogeneous)?
        .into_iter()
        .skip(1)
    {
        let cmp = model.compare(&baseline, &design, &workload)?;
        if !cmp.alt.operational.is_viable() {
            println!("{label:>8}: rejected — interface bandwidth below requirement");
            continue;
        }
        let lifetime = profile.lifetime();
        let choose = cmp.metrics.recommend_choosing(lifetime);
        let replace = cmp.metrics.recommend_replacing(lifetime);
        println!(
            "{label:>8}: embodied {:+.1}%, lifecycle {:+.1}% → {} new fleets; {} retrofits",
            -cmp.embodied_save.percent(),
            -cmp.overall_save.percent(),
            if choose { "USE for" } else { "skip for" },
            if replace { "DO" } else { "skip" },
        );
        match cmp.metrics.outcome {
            ChoiceOutcome::AlwaysBetter => {
                println!("          (better at any lifetime)");
            }
            ChoiceOutcome::BetterUntil(t) => {
                println!("          (stays ahead of 2D until year {:.1})", t.years());
            }
            ChoiceOutcome::BetterAfter(t) => {
                println!("          (pays off after year {:.1})", t.years());
            }
            ChoiceOutcome::NeverBetter => {}
        }
    }

    println!(
        "\nRule of thumb reproduced from the paper: choosing efficient 3D/2.5D \
         redesigns for *new* vehicles saves carbon, but replacing working 2D \
         silicon almost never does — the new chip's embodied carbon is too \
         large to win back within the fleet's life."
    );
    Ok(())
}
