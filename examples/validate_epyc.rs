//! The paper's §4.1 validation as an application: estimate the AMD
//! EPYC 7452's embodied carbon with 3D-Carbon, ACT+, the first-order
//! model, and an LCA reference entry, and show where the bottom-up
//! models disagree and why.
//!
//! ```text
//! cargo run --example validate_epyc
//! ```

use threed_carbon::baselines::{
    first_order_embodied, ActPlusModel, DieInput, LcaDatabase, PackageClass, EPYC_7452,
};
use threed_carbon::prelude::*;
use threed_carbon::workloads::{epyc_7452, epyc_7452_as_monolithic_2d, EpycReference};

fn main() -> Result<(), ModelError> {
    let model = CarbonModel::new(ModelContext::default());

    let mcm = model.embodied(&epyc_7452()?)?;
    let as_2d = model.embodied(&epyc_7452_as_monolithic_2d()?)?;

    let mut dies = vec![
        DieInput {
            node: ProcessNode::N7,
            area: EpycReference::ccd_area(),
        };
        EpycReference::ccd_count()
    ];
    dies.push(DieInput {
        node: ProcessNode::N14,
        area: EpycReference::io_die_area(),
    });
    let act_plus = ActPlusModel::default()
        .embodied(&dies, PackageClass::TwoPointFiveDOrganic)
        .expect("valid die list");

    // First-order: one coefficient per node, linear in area.
    let first_order = first_order_embodied(
        ProcessNode::N7,
        EpycReference::ccd_area() * EpycReference::ccd_count() as f64,
    ) + first_order_embodied(ProcessNode::N14, EpycReference::io_die_area());

    let lca = LcaDatabase::default()
        .embodied(EPYC_7452)
        .expect("entry exists");

    println!("AMD EPYC 7452 embodied carbon, four estimators:\n");
    println!("  LCA reference (2D monolithic view) {:>8.2} kg", lca.kg());
    println!(
        "  3D-Carbon, adjusted to 2D          {:>8.2} kg",
        as_2d.total().kg()
    );
    println!(
        "  3D-Carbon, real 2.5D MCM           {:>8.2} kg",
        mcm.total().kg()
    );
    println!(
        "  ACT+                               {:>8.2} kg",
        act_plus.total().kg()
    );
    println!(
        "  first-order (die size only)        {:>8.2} kg",
        first_order.kg()
    );

    println!("\nWhy the 2.5D product beats the monolithic view:");
    println!(
        "  monolithic 712 mm² die yield would be {:.1} %, while the four 74 mm² \
         chiplets yield {:.1} % each",
        as_2d.dies[0].fab_yield * 100.0,
        mcm.dies[0].fab_yield * 100.0
    );
    println!(
        "  chiplet dies pay an MCM assembly overhead instead: {:.2} kg bonding \
         + {:.2} kg laminate",
        mcm.bonding_carbon.kg(),
        mcm.substrate.as_ref().map_or(0.0, |s| s.carbon.kg())
    );
    println!(
        "  and packaging follows real area ({:.0} mm² package → {:.2} kg), not \
         ACT+'s fixed 0.15 kg",
        mcm.package_area.mm2(),
        mcm.packaging_carbon.kg()
    );
    Ok(())
}
