//! Quickstart: life-cycle carbon of one chip, three ways.
//!
//! Builds an Orin-class SoC as (a) a monolithic 2D die, (b) a two-tier
//! hybrid-bonded 3D stack, and (c) a two-die EMIB 2.5D assembly, and
//! prints the full embodied + operational breakdown for each.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use threed_carbon::prelude::*;

fn main() -> Result<(), ModelError> {
    // --- Describe the silicon -------------------------------------------
    // 17 G gates at 7 nm, 2.74 TOPS/W (NVIDIA Orin's public numbers).
    let monolith = ChipDesign::monolithic_2d(
        DieSpec::builder("orin", ProcessNode::N7)
            .gate_count(17.0e9)
            .efficiency(Efficiency::from_tops_per_watt(2.74))
            .build()?,
    );

    let half = |name: &str| {
        DieSpec::builder(name, ProcessNode::N7)
            .gate_count(8.5e9)
            .efficiency(Efficiency::from_tops_per_watt(2.74))
            .build()
    };

    let stack = ChipDesign::stack_3d(
        vec![half("tier0")?, half("tier1")?],
        IntegrationTechnology::HybridBonding3d,
        StackOrientation::FaceToFace,
        Some(StackingFlow::DieToWafer),
    )?;

    let assembly = ChipDesign::assembly_25d(
        vec![half("west")?, half("east")?],
        IntegrationTechnology::Emib,
    )?;

    // --- Describe the mission -------------------------------------------
    // A 10-year AV deployment sustaining 254 TOPS while driving.
    let workload = av_workload(Throughput::from_tops(254.0));

    // --- Evaluate ---------------------------------------------------------
    let model = CarbonModel::new(ModelContext::default());
    for design in [&monolith, &stack, &assembly] {
        let report = model.lifecycle(design, &workload)?;
        println!("{report}\n");
    }

    // --- Decide -----------------------------------------------------------
    let cmp = model.compare(&monolith, &stack, &workload)?;
    println!(
        "hybrid 3D vs 2D: saves {:.1} of embodied and {:.1} of lifecycle carbon",
        cmp.embodied_save.as_percent_display(),
        cmp.overall_save.as_percent_display(),
    );
    println!(
        "choose it for a 10-year deployment? {}",
        if cmp.metrics.recommend_choosing(TimeSpan::from_years(10.0)) {
            "yes"
        } else {
            "no"
        }
    );
    Ok(())
}
