//! Design-space exploration: sweep one design across every process
//! node, integration technology, and fab location in a few
//! milliseconds — the "early design stage" use-case the paper's
//! conclusion targets.
//!
//! ```text
//! cargo run --example design_space
//! ```

use threed_carbon::prelude::*;

fn two_die_design(
    node: ProcessNode,
    gates: f64,
    tech: IntegrationTechnology,
) -> Result<ChipDesign, ModelError> {
    let half = gates / 2.0;
    let die = |name: &str| DieSpec::builder(name, node).gate_count(half).build();
    match tech.family() {
        IntegrationFamily::ThreeD => {
            let (orientation, flow) = if tech == IntegrationTechnology::Monolithic3d {
                (StackOrientation::FaceToBack, None)
            } else {
                (StackOrientation::FaceToFace, Some(StackingFlow::DieToWafer))
            };
            ChipDesign::stack_3d(vec![die("a")?, die("b")?], tech, orientation, flow)
        }
        IntegrationFamily::TwoPointFiveD => {
            ChipDesign::assembly_25d(vec![die("a")?, die("b")?], tech)
        }
    }
}

fn main() -> Result<(), ModelError> {
    let gates = 10.0e9;
    println!(
        "Embodied carbon (kg CO2e) of a {:.0} G-gate chip, two-die designs:\n",
        gates / 1.0e9
    );

    // Header.
    print!("{:>8}", "node");
    for tech in IntegrationTechnology::ALL {
        print!("{:>9}", tech.label());
    }
    println!("{:>9}", "2D ref");

    let model = CarbonModel::new(ModelContext::default());
    let mut best: Option<(f64, ProcessNode, String)> = None;
    for node in [
        ProcessNode::N28,
        ProcessNode::N16,
        ProcessNode::N12,
        ProcessNode::N7,
        ProcessNode::N5,
        ProcessNode::N3,
    ] {
        print!("{:>8}", node.to_string());
        for tech in IntegrationTechnology::ALL {
            let design = two_die_design(node, gates, tech)?;
            let total = model.embodied(&design)?.total();
            print!("{:>9.2}", total.kg());
            if best.as_ref().is_none_or(|(b, _, _)| total.kg() < *b) {
                best = Some((total.kg(), node, tech.label().to_owned()));
            }
        }
        let mono =
            ChipDesign::monolithic_2d(DieSpec::builder("ref", node).gate_count(gates).build()?);
        println!("{:>9.2}", model.embodied(&mono)?.total().kg());
    }

    if let Some((kg, node, tech)) = best {
        println!("\nlowest embodied: {kg:.2} kg at {node} with {tech}");
    }

    println!("\nSame design, fab-location sensitivity (7 nm hybrid-bond stack):");
    for region in [
        GridRegion::CoalHeavy,
        GridRegion::Taiwan,
        GridRegion::UnitedStates,
        GridRegion::France,
        GridRegion::Renewable,
    ] {
        let model = CarbonModel::new(ModelContext::builder().fab_region(region).build());
        let design = two_die_design(
            ProcessNode::N7,
            gates,
            IntegrationTechnology::HybridBonding3d,
        )?;
        println!(
            "  {:<28} {:>8.2} kg",
            region.to_string(),
            model.embodied(&design)?.total().kg()
        );
    }
    Ok(())
}
